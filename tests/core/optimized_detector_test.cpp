#include "core/optimized_detector.h"

#include <gtest/gtest.h>

#include "tests/core/scenario.h"
#include "util/thread_pool.h"

namespace p2prep::core {
namespace {

using testing::Scenario;

DetectorConfig config() {
  DetectorConfig c;
  c.positive_fraction_min = 0.8;
  c.complement_fraction_max = 0.2;
  c.frequency_min = 20;
  c.high_rep_threshold = 0.05;
  return c;
}

Scenario collusion_scenario() {
  Scenario s(30);
  s.collude(0, 1, 50);
  s.crowd(3, 30, 0, 0.1);
  s.crowd(3, 30, 1, 0.1);
  s.crowd(3, 30, 2, 0.9);
  s.set_rep(0, 0.2).set_rep(1, 0.2).set_rep(2, 0.3);
  return s;
}

TEST(OptimizedDetectorTest, DetectsPlantedPair) {
  OptimizedCollusionDetector d(config());
  const DetectionReport report = d.detect(collusion_scenario().build());
  ASSERT_EQ(report.pairs.size(), 1u);
  EXPECT_TRUE(report.contains(0, 1));
}

TEST(OptimizedDetectorTest, HonestNodeNotFlagged) {
  OptimizedCollusionDetector d(config());
  const DetectionReport report = d.detect(collusion_scenario().build());
  for (const auto& e : report.pairs) {
    EXPECT_NE(e.first, 2u);
    EXPECT_NE(e.second, 2u);
  }
}

TEST(OptimizedDetectorTest, LowReputationIgnored) {
  Scenario s = collusion_scenario();
  s.set_rep(0, 0.0).set_rep(1, 0.0);
  OptimizedCollusionDetector d(config());
  EXPECT_TRUE(d.detect(s.build()).pairs.empty());
}

TEST(OptimizedDetectorTest, InfrequentPairIgnored) {
  Scenario s(30);
  s.collude(0, 1, 19);
  s.crowd(3, 30, 0, 0.1);
  s.crowd(3, 30, 1, 0.1);
  s.set_rep(0, 0.2).set_rep(1, 0.2);
  OptimizedCollusionDetector d(config());
  EXPECT_TRUE(d.detect(s.build()).pairs.empty());
}

TEST(OptimizedDetectorTest, PopularPairRejectedByUpperBound) {
  // Crowd loves both: window reputation too high for Formula (2).
  Scenario s(30);
  s.collude(0, 1, 50);
  s.crowd(3, 30, 0, 0.95);
  s.crowd(3, 30, 1, 0.95);
  s.set_rep(0, 0.2).set_rep(1, 0.2);
  OptimizedCollusionDetector d(config());
  EXPECT_TRUE(d.detect(s.build()).pairs.empty());
}

TEST(OptimizedDetectorTest, FeudRejectedByLowerBound) {
  Scenario s(30);
  s.rate(0, 1, 50, rating::Score::kNegative);
  s.rate(1, 0, 50, rating::Score::kNegative);
  s.crowd(3, 30, 0, 0.1);
  s.crowd(3, 30, 1, 0.1);
  s.set_rep(0, 0.2).set_rep(1, 0.2);
  OptimizedCollusionDetector d(config());
  EXPECT_TRUE(d.detect(s.build()).pairs.empty());
}

TEST(OptimizedDetectorTest, CostMuchLowerThanQuadraticScan) {
  // The whole point of the method: no O(n) inner scans. On a wide matrix
  // the scan count stays O(m n) instead of O(m n^2).
  Scenario s(200);
  s.collude(0, 1, 50);
  for (rating::NodeId id = 0; id < 200; ++id) s.set_rep(id, 0.2);
  s.crowd(3, 200, 0, 0.1);
  s.crowd(3, 200, 1, 0.1);
  const auto matrix = s.build();
  OptimizedCollusionDetector d(config());
  const auto report = d.detect(matrix);
  // m = 200 live rows; scans must stay well below m * n = 40000 * n.
  EXPECT_LT(report.cost.element_scans, 200u * 200u + 1000u);
  EXPECT_TRUE(report.contains(0, 1));
}

TEST(OptimizedDetectorTest, ParallelMatchesSerial) {
  util::ThreadPool pool(4);
  Scenario s(150);
  s.collude(0, 1, 30).collude(10, 11, 40).collude(70, 140, 25);
  for (rating::NodeId id : {0u, 1u, 10u, 11u, 70u, 140u}) {
    s.crowd(20, 60, id, 0.05);
    s.set_rep(id, 0.2);
  }
  const auto matrix = s.build();
  OptimizedCollusionDetector serial(config());
  OptimizedCollusionDetector parallel(config(), &pool);
  const auto rs = serial.detect(matrix);
  const auto rp = parallel.detect(matrix);
  ASSERT_EQ(rs.pairs.size(), rp.pairs.size());
  for (std::size_t i = 0; i < rs.pairs.size(); ++i) {
    EXPECT_EQ(rs.pairs[i].first, rp.pairs[i].first);
    EXPECT_EQ(rs.pairs[i].second, rp.pairs[i].second);
  }
}

TEST(OptimizedDetectorTest, EvidenceCarriesDerivedComplements) {
  OptimizedCollusionDetector d(config());
  const auto report = d.detect(collusion_scenario().build());
  ASSERT_EQ(report.pairs.size(), 1u);
  const PairEvidence& e = report.pairs[0];
  EXPECT_DOUBLE_EQ(e.positive_fraction_first, 1.0);
  EXPECT_NEAR(e.complement_fraction_first, 0.1, 0.05);
  EXPECT_NEAR(e.complement_fraction_second, 0.1, 0.05);
}

TEST(OptimizedDetectorTest, AccomplicePropagationWorks) {
  Scenario s(40);
  s.collude(0, 1, 50).collude(0, 7, 50);
  s.crowd(10, 40, 0, 0.05);
  s.crowd(10, 40, 1, 0.05);
  s.crowd(10, 40, 7, 0.95);
  s.set_rep(0, 0.2).set_rep(1, 0.2).set_rep(7, 0.3);
  DetectorConfig c = config();
  c.complement_fraction_max = 0.7;
  const auto report = OptimizedCollusionDetector(c).detect(s.build());
  EXPECT_TRUE(report.contains(0, 1));
  EXPECT_TRUE(report.contains(0, 7));
}

TEST(OptimizedDetectorTest, StrictBoundsMissPartnerOnlyBoundary) {
  // Documented boundary behaviour (DetectorConfig::inclusive_bounds),
  // specific to the paper-literal Formula (2) path: partner-only
  // all-positive ratings sit exactly on the bound.
  Scenario s(10);
  s.collude(0, 1, 50);
  s.set_rep(0, 0.2).set_rep(1, 0.2);
  DetectorConfig inclusive = config();
  inclusive.joint_complement = false;
  inclusive.inclusive_bounds = true;
  EXPECT_TRUE(
      OptimizedCollusionDetector(inclusive).detect(s.build()).contains(0, 1));
  DetectorConfig strict = config();
  strict.joint_complement = false;
  strict.inclusive_bounds = false;
  EXPECT_TRUE(
      OptimizedCollusionDetector(strict).detect(s.build()).pairs.empty());
}

}  // namespace
}  // namespace p2prep::core
