#include "core/group_detector.h"

#include <gtest/gtest.h>

#include "tests/core/scenario.h"

namespace p2prep::core {
namespace {

using testing::Scenario;

DetectorConfig config() {
  DetectorConfig c;
  c.positive_fraction_min = 0.8;
  c.complement_fraction_max = 0.2;
  c.frequency_min = 20;
  c.high_rep_threshold = 0.05;
  return c;
}

/// Ring of `size` nodes starting at node 0, each pair mutually boosting.
Scenario ring_scenario(std::size_t n, std::size_t size) {
  Scenario s(n);
  for (rating::NodeId a = 0; a < size; ++a) {
    for (rating::NodeId b = static_cast<rating::NodeId>(a + 1); b < size; ++b)
      s.collude(a, b, 30);
  }
  for (rating::NodeId id = 0; id < size; ++id) {
    s.crowd(static_cast<rating::NodeId>(size + 2),
            static_cast<rating::NodeId>(n), id, 0.05);
    s.set_rep(id, 0.2);
  }
  return s;
}

TEST(GroupDetectorTest, DetectsTriangleCollective) {
  // The paper's future-work case: three nodes mutually boosting.
  GroupCollusionDetector d(config());
  const auto report = d.detect(ring_scenario(40, 3).build());
  ASSERT_EQ(report.groups.size(), 1u);
  EXPECT_EQ(report.groups[0].members,
            (std::vector<rating::NodeId>{0, 1, 2}));
  EXPECT_EQ(report.groups[0].edges.size(), 3u);  // full triangle
  EXPECT_LT(report.groups[0].outside_positive_fraction, 0.2);
  EXPECT_EQ(report.colluders(), (std::vector<rating::NodeId>{0, 1, 2}));
}

TEST(GroupDetectorTest, PairIsTwoNodeGroup) {
  GroupCollusionDetector d(config());
  const auto report = d.detect(ring_scenario(40, 2).build());
  ASSERT_EQ(report.groups.size(), 1u);
  EXPECT_EQ(report.groups[0].members, (std::vector<rating::NodeId>{0, 1}));
}

TEST(GroupDetectorTest, LargeCliqueDetectedAsOneGroup) {
  GroupCollusionDetector d(config());
  const auto report = d.detect(ring_scenario(60, 6).build());
  ASSERT_EQ(report.groups.size(), 1u);
  EXPECT_EQ(report.groups[0].members.size(), 6u);
  EXPECT_EQ(report.groups[0].edges.size(), 15u);  // 6 choose 2
}

TEST(GroupDetectorTest, ChainMergesIntoOneComponent) {
  // 0-1, 1-2 mutual boosting (1 has two partners, no 0-2 edge).
  Scenario s(40);
  s.collude(0, 1, 30).collude(1, 2, 30);
  for (rating::NodeId id : {0u, 1u, 2u}) {
    s.crowd(5, 40, id, 0.05);
    s.set_rep(id, 0.2);
  }
  GroupCollusionDetector d(config());
  const auto report = d.detect(s.build());
  ASSERT_EQ(report.groups.size(), 1u);
  EXPECT_EQ(report.groups[0].members, (std::vector<rating::NodeId>{0, 1, 2}));
  EXPECT_EQ(report.groups[0].edges.size(), 2u);  // chain, not triangle
}

TEST(GroupDetectorTest, PopularCollectiveNotFlagged) {
  // Mutual boosting but the outside world loves them: C2 fails.
  Scenario s(40);
  s.collude(0, 1, 30).collude(1, 2, 30).collude(0, 2, 30);
  for (rating::NodeId id : {0u, 1u, 2u}) {
    s.crowd(5, 40, id, 0.9);
    s.set_rep(id, 0.2);
  }
  GroupCollusionDetector d(config());
  EXPECT_TRUE(d.detect(s.build()).groups.empty());
}

TEST(GroupDetectorTest, LowReputationMembersExcluded) {
  Scenario s = ring_scenario(40, 3);
  s.set_rep(0, 0.0).set_rep(1, 0.0).set_rep(2, 0.0);
  GroupCollusionDetector d(config());
  EXPECT_TRUE(d.detect(s.build()).groups.empty());
}

TEST(GroupDetectorTest, InfrequentEdgesIgnored) {
  Scenario s(40);
  s.collude(0, 1, 10);  // below T_N
  s.crowd(5, 40, 0, 0.05);
  s.crowd(5, 40, 1, 0.05);
  s.set_rep(0, 0.2).set_rep(1, 0.2);
  GroupCollusionDetector d(config());
  EXPECT_TRUE(d.detect(s.build()).groups.empty());
}

TEST(GroupDetectorTest, DisjointGroupsReportedSeparately) {
  Scenario s(60);
  s.collude(0, 1, 30).collude(1, 2, 30);  // chain {0,1,2}
  s.collude(10, 11, 30);                   // pair {10,11}
  for (rating::NodeId id : {0u, 1u, 2u, 10u, 11u}) {
    s.crowd(20, 60, id, 0.05);
    s.set_rep(id, 0.2);
  }
  GroupCollusionDetector d(config());
  const auto report = d.detect(s.build());
  ASSERT_EQ(report.groups.size(), 2u);
  EXPECT_EQ(report.groups[0].members.size(), 3u);
  EXPECT_EQ(report.groups[1].members,
            (std::vector<rating::NodeId>{10, 11}));
  EXPECT_NE(report.group_of(1), nullptr);
  EXPECT_EQ(report.group_of(1), report.group_of(2));
  EXPECT_NE(report.group_of(1), report.group_of(10));
  EXPECT_EQ(report.group_of(50), nullptr);
}

TEST(GroupDetectorTest, EvidenceFieldsAndToString) {
  GroupCollusionDetector d(config());
  const auto report = d.detect(ring_scenario(40, 3).build());
  ASSERT_EQ(report.groups.size(), 1u);
  const CollusionGroup& g = report.groups[0];
  EXPECT_EQ(g.inside_ratings, 3u * 2u * 30u);  // 3 edges, 30 each way
  EXPECT_GT(g.outside_ratings, 0u);
  EXPECT_FALSE(g.to_string().empty());
  EXPECT_GT(report.cost.total(), 0u);
}

TEST(GroupDetectorTest, EmptyMatrix) {
  rating::RatingMatrix matrix(10);
  GroupCollusionDetector d(config());
  const auto report = d.detect(matrix);
  EXPECT_TRUE(report.groups.empty());
  EXPECT_TRUE(report.colluders().empty());
}

}  // namespace
}  // namespace p2prep::core
