#include "core/evidence.h"

#include <gtest/gtest.h>

namespace p2prep::core {
namespace {

PairEvidence pair(rating::NodeId a, rating::NodeId b) {
  PairEvidence e;
  e.first = a;
  e.second = b;
  return e;
}

TEST(PairKeyTest, OrderInsensitive) {
  EXPECT_EQ(pair_key(3, 9), pair_key(9, 3));
  EXPECT_NE(pair_key(3, 9), pair_key(3, 10));
  EXPECT_EQ(pair_key(0, 0), 0u);
}

TEST(DetectionReportTest, ContainsIsSymmetric) {
  DetectionReport r;
  r.pairs.push_back(pair(4, 5));
  EXPECT_TRUE(r.contains(4, 5));
  EXPECT_TRUE(r.contains(5, 4));
  EXPECT_FALSE(r.contains(4, 6));
}

TEST(DetectionReportTest, CollidersAreSortedUnique) {
  DetectionReport r;
  r.pairs.push_back(pair(9, 4));
  r.pairs.push_back(pair(4, 5));
  const auto ids = r.colluders();
  EXPECT_EQ(ids, (std::vector<rating::NodeId>{4, 5, 9}));
}

TEST(DetectionReportTest, CanonicalizeOrdersWithinPairs) {
  DetectionReport r;
  PairEvidence e = pair(7, 2);
  e.ratings_to_first = 11;     // ratings received by node 7
  e.ratings_to_second = 22;    // ratings received by node 2
  e.positive_fraction_first = 0.9;
  e.positive_fraction_second = 0.8;
  e.global_rep_first = 0.07;
  e.global_rep_second = 0.02;
  r.pairs.push_back(e);
  r.canonicalize();
  ASSERT_EQ(r.pairs.size(), 1u);
  EXPECT_EQ(r.pairs[0].first, 2u);
  EXPECT_EQ(r.pairs[0].second, 7u);
  // Per-direction fields must swap with the ids.
  EXPECT_EQ(r.pairs[0].ratings_to_first, 22u);
  EXPECT_EQ(r.pairs[0].ratings_to_second, 11u);
  EXPECT_DOUBLE_EQ(r.pairs[0].positive_fraction_first, 0.8);
  EXPECT_DOUBLE_EQ(r.pairs[0].global_rep_first, 0.02);
}

TEST(DetectionReportTest, CanonicalizeSortsAndDedups) {
  DetectionReport r;
  r.pairs.push_back(pair(9, 4));
  r.pairs.push_back(pair(4, 9));  // same pair, reversed
  r.pairs.push_back(pair(1, 2));
  r.canonicalize();
  ASSERT_EQ(r.pairs.size(), 2u);
  EXPECT_EQ(r.pairs[0].first, 1u);
  EXPECT_EQ(r.pairs[0].second, 2u);
  EXPECT_EQ(r.pairs[1].first, 4u);
  EXPECT_EQ(r.pairs[1].second, 9u);
}

TEST(PairEvidenceTest, ToStringMentionsBothNodes) {
  PairEvidence e = pair(4, 5);
  const std::string s = e.to_string();
  EXPECT_NE(s.find("4"), std::string::npos);
  EXPECT_NE(s.find("5"), std::string::npos);
}

TEST(DetectionReportTest, EmptyReportBehaves) {
  DetectionReport r;
  EXPECT_TRUE(r.colluders().empty());
  EXPECT_FALSE(r.contains(1, 2));
  r.canonicalize();
  EXPECT_TRUE(r.pairs.empty());
}

}  // namespace
}  // namespace p2prep::core
