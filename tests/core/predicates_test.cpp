#include "core/predicates.h"

#include <gtest/gtest.h>

namespace p2prep::core {
namespace {

rating::PairStats stats(std::uint32_t pos, std::uint32_t neg,
                        std::uint32_t neutral = 0) {
  rating::PairStats s;
  for (std::uint32_t i = 0; i < pos; ++i) s.add(rating::Score::kPositive);
  for (std::uint32_t i = 0; i < neg; ++i) s.add(rating::Score::kNegative);
  for (std::uint32_t i = 0; i < neutral; ++i) s.add(rating::Score::kNeutral);
  return s;
}

DetectorConfig config() {
  DetectorConfig c;
  c.frequency_min = 20;
  c.positive_fraction_min = 0.8;
  c.complement_fraction_max = 0.2;
  return c;
}

TEST(PredicatesTest, FrequencyThresholdIsInclusive) {
  EXPECT_FALSE(frequency_ok(stats(19, 0), config()));
  EXPECT_TRUE(frequency_ok(stats(20, 0), config()));
  EXPECT_TRUE(frequency_ok(stats(10, 10), config()));  // total counts
}

TEST(PredicatesTest, PositiveFractionThresholdIsInclusive) {
  EXPECT_TRUE(positive_fraction_ok(stats(8, 2), config()));   // exactly 0.8
  EXPECT_TRUE(positive_fraction_ok(stats(9, 1), config()));
  EXPECT_FALSE(positive_fraction_ok(stats(7, 3), config()));
  EXPECT_FALSE(positive_fraction_ok(stats(0, 0), config()));  // empty
}

TEST(PredicatesTest, ComplementThresholdIsStrict) {
  EXPECT_TRUE(complement_ok(stats(1, 9), config()));    // 0.1 < 0.2
  EXPECT_FALSE(complement_ok(stats(2, 8), config()));   // exactly 0.2
  EXPECT_FALSE(complement_ok(stats(9, 1), config()));
}

TEST(PredicatesTest, EmptyComplementFollowsConfig) {
  DetectorConfig c = config();
  c.empty_complement_is_suspicious = true;
  EXPECT_TRUE(complement_ok(stats(0, 0), c));
  c.empty_complement_is_suspicious = false;
  EXPECT_FALSE(complement_ok(stats(0, 0), c));
}

TEST(PredicatesTest, BasicDirectionalRequiresAllThree) {
  const DetectorConfig c = config();
  const auto collusive_pair = stats(48, 2);      // 50 ratings, 96% positive
  const auto hostile_world = stats(5, 95);       // b = 0.05
  const auto friendly_world = stats(95, 5);      // b = 0.95
  const auto rare_pair = stats(10, 0);           // below T_N
  const auto negative_pair = stats(10, 40);      // a = 0.2

  EXPECT_TRUE(basic_directional(collusive_pair, hostile_world, c));
  EXPECT_FALSE(basic_directional(collusive_pair, friendly_world, c));
  EXPECT_FALSE(basic_directional(rare_pair, hostile_world, c));
  EXPECT_FALSE(basic_directional(negative_pair, hostile_world, c));
}

TEST(PredicatesTest, OptimizedDirectionalMatchesFormulaInputs) {
  const DetectorConfig c = config();
  // Node rated 50x by partner (48+), 100x by others (5+, 95-):
  // N_i = 150, R_i = 53 - 97 = -44.
  const auto pair = stats(48, 2);
  const auto world = stats(5, 95);
  const auto totals = pair + world;
  EXPECT_TRUE(optimized_directional(pair, totals.total,
                                    totals.reputation_delta(), c));

  // Friendly world: R_i = (48+95) - (2+5) = 136, way above the bound.
  const auto friendly = stats(95, 5);
  const auto totals2 = pair + friendly;
  EXPECT_FALSE(optimized_directional(pair, totals2.total,
                                     totals2.reputation_delta(), c));
}

TEST(PredicatesTest, OptimizedImpliedByBasicOnSignedRatings) {
  // Containment property: on +/-1 ratings, any pair passing the Basic
  // directional predicate also passes the Optimized one.
  const DetectorConfig c = config();
  for (std::uint32_t pair_pos = 0; pair_pos <= 30; pair_pos += 3) {
    for (std::uint32_t pair_neg = 0; pair_neg <= 12; pair_neg += 3) {
      for (std::uint32_t comp_pos = 0; comp_pos <= 40; comp_pos += 5) {
        for (std::uint32_t comp_neg = 0; comp_neg <= 40; comp_neg += 5) {
          const auto pair = stats(pair_pos, pair_neg);
          const auto comp = stats(comp_pos, comp_neg);
          if (!basic_directional(pair, comp, c)) continue;
          const auto totals = pair + comp;
          EXPECT_TRUE(optimized_directional(pair, totals.total,
                                            totals.reputation_delta(), c))
              << pair_pos << "/" << pair_neg << " vs " << comp_pos << "/"
              << comp_neg;
        }
      }
    }
  }
}

}  // namespace
}  // namespace p2prep::core
