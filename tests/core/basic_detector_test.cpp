#include "core/basic_detector.h"

#include <gtest/gtest.h>

#include "tests/core/scenario.h"
#include "util/thread_pool.h"

namespace p2prep::core {
namespace {

using testing::Scenario;

DetectorConfig config() {
  DetectorConfig c;
  c.positive_fraction_min = 0.8;
  c.complement_fraction_max = 0.2;
  c.frequency_min = 20;
  c.high_rep_threshold = 0.05;
  return c;
}

/// Canonical collusion: 0 and 1 bombard each other, the crowd dislikes
/// both, node 2 is an honest bystander everyone likes.
Scenario collusion_scenario() {
  Scenario s(30);
  s.collude(0, 1, 50);
  s.crowd(3, 30, 0, 0.1);
  s.crowd(3, 30, 1, 0.1);
  s.crowd(3, 30, 2, 0.9);
  s.set_rep(0, 0.2).set_rep(1, 0.2).set_rep(2, 0.3);
  return s;
}

TEST(BasicDetectorTest, DetectsPlantedPair) {
  BasicCollusionDetector d(config());
  const DetectionReport report = d.detect(collusion_scenario().build());
  ASSERT_EQ(report.pairs.size(), 1u);
  EXPECT_TRUE(report.contains(0, 1));
  EXPECT_EQ(report.colluders(), (std::vector<rating::NodeId>{0, 1}));
}

TEST(BasicDetectorTest, HonestBystanderNotFlagged) {
  BasicCollusionDetector d(config());
  const DetectionReport report = d.detect(collusion_scenario().build());
  for (const auto& e : report.pairs) {
    EXPECT_NE(e.first, 2u);
    EXPECT_NE(e.second, 2u);
  }
}

TEST(BasicDetectorTest, LowReputationPairIgnored) {
  // Same rating pattern, but the pair is below T_R: C1 fails, no checks.
  Scenario s = collusion_scenario();
  s.set_rep(0, 0.01).set_rep(1, 0.01);
  BasicCollusionDetector d(config());
  const DetectionReport report = d.detect(s.build());
  EXPECT_TRUE(report.pairs.empty());
}

TEST(BasicDetectorTest, OneSidedHighReputationIgnored) {
  Scenario s = collusion_scenario();
  s.set_rep(1, 0.0);
  BasicCollusionDetector d(config());
  EXPECT_TRUE(d.detect(s.build()).pairs.empty());
}

TEST(BasicDetectorTest, InfrequentPairIgnored) {
  Scenario s(30);
  s.collude(0, 1, 19);  // below T_N = 20
  s.crowd(3, 30, 0, 0.1);
  s.crowd(3, 30, 1, 0.1);
  s.set_rep(0, 0.2).set_rep(1, 0.2);
  BasicCollusionDetector d(config());
  EXPECT_TRUE(d.detect(s.build()).pairs.empty());
}

TEST(BasicDetectorTest, FrequencyExactlyAtThresholdDetected) {
  Scenario s(30);
  s.collude(0, 1, 20);
  s.crowd(3, 30, 0, 0.1);
  s.crowd(3, 30, 1, 0.1);
  s.set_rep(0, 0.2).set_rep(1, 0.2);
  BasicCollusionDetector d(config());
  EXPECT_TRUE(d.detect(s.build()).contains(0, 1));
}

TEST(BasicDetectorTest, MutualNegativeBombardmentNotCollusion) {
  // A feud: two nodes frequently rate each other *negatively*.
  Scenario s(30);
  s.rate(0, 1, 50, rating::Score::kNegative);
  s.rate(1, 0, 50, rating::Score::kNegative);
  s.crowd(3, 30, 0, 0.1);
  s.crowd(3, 30, 1, 0.1);
  s.set_rep(0, 0.2).set_rep(1, 0.2);
  BasicCollusionDetector d(config());
  EXPECT_TRUE(d.detect(s.build()).pairs.empty());
}

TEST(BasicDetectorTest, OneDirectionalBoostNotFlagged) {
  // 0 boosts 1 but 1 never rates 0 back: N_(0,1) = 0 fails C4 on 0's side.
  Scenario s(30);
  s.rate(0, 1, 50, rating::Score::kPositive);
  s.crowd(3, 30, 1, 0.1);
  s.crowd(3, 30, 0, 0.1);
  s.set_rep(0, 0.2).set_rep(1, 0.2);
  DetectorConfig c = config();
  c.flag_accomplices = false;
  BasicCollusionDetector d(c);
  EXPECT_TRUE(d.detect(s.build()).pairs.empty());
}

TEST(BasicDetectorTest, PopularPairNotFlagged) {
  // Mutual frequent positive ratings, but the crowd loves both: C2 fails.
  Scenario s(30);
  s.collude(0, 1, 50);
  s.crowd(3, 30, 0, 0.9);
  s.crowd(3, 30, 1, 0.9);
  s.set_rep(0, 0.2).set_rep(1, 0.2);
  BasicCollusionDetector d(config());
  EXPECT_TRUE(d.detect(s.build()).pairs.empty());
}

TEST(BasicDetectorTest, PartnerOnlyRatingsFollowEmptyComplementPolicy) {
  // Nobody but the partner rated the pair.
  Scenario s(10);
  s.collude(0, 1, 50);
  s.set_rep(0, 0.2).set_rep(1, 0.2);
  DetectorConfig c = config();
  c.empty_complement_is_suspicious = true;
  EXPECT_TRUE(
      BasicCollusionDetector(c).detect(s.build()).contains(0, 1));
  c.empty_complement_is_suspicious = false;
  EXPECT_TRUE(BasicCollusionDetector(c).detect(s.build()).pairs.empty());
}

TEST(BasicDetectorTest, MultiplePairsAllFound) {
  Scenario s(40);
  s.collude(0, 1, 30).collude(2, 3, 40).collude(4, 5, 25);
  for (rating::NodeId id = 0; id < 6; ++id) {
    s.crowd(10, 40, id, 0.1);
    s.set_rep(id, 0.2);
  }
  BasicCollusionDetector d(config());
  const DetectionReport report = d.detect(s.build());
  EXPECT_EQ(report.pairs.size(), 3u);
  EXPECT_TRUE(report.contains(0, 1));
  EXPECT_TRUE(report.contains(2, 3));
  EXPECT_TRUE(report.contains(4, 5));
}

TEST(BasicDetectorTest, EvidenceFieldsPopulated) {
  BasicCollusionDetector d(config());
  const DetectionReport report = d.detect(collusion_scenario().build());
  ASSERT_EQ(report.pairs.size(), 1u);
  const PairEvidence& e = report.pairs[0];
  EXPECT_EQ(e.first, 0u);
  EXPECT_EQ(e.second, 1u);
  EXPECT_EQ(e.ratings_to_first, 50u);
  EXPECT_EQ(e.ratings_to_second, 50u);
  EXPECT_DOUBLE_EQ(e.positive_fraction_first, 1.0);
  EXPECT_DOUBLE_EQ(e.positive_fraction_second, 1.0);
  EXPECT_NEAR(e.complement_fraction_first, 0.1, 0.05);
  EXPECT_DOUBLE_EQ(e.global_rep_first, 0.2);
}

TEST(BasicDetectorTest, CostChargedAndScalesWithMatrix) {
  BasicCollusionDetector d(config());
  const auto small_report = d.detect(collusion_scenario().build());
  EXPECT_GT(small_report.cost.total(), 0u);
  EXPECT_GT(small_report.cost.element_scans, 0u);

  // A matrix with more high-reputed rows costs more to sweep.
  Scenario big(120);
  big.collude(0, 1, 50);
  for (rating::NodeId id = 0; id < 120; ++id) big.set_rep(id, 0.2);
  big.crowd(3, 120, 0, 0.1);
  big.crowd(3, 120, 1, 0.1);
  const auto big_report = BasicCollusionDetector(config()).detect(big.build());
  EXPECT_GT(big_report.cost.total(), small_report.cost.total());
}

TEST(BasicDetectorTest, ParallelMatchesSerialPairs) {
  util::ThreadPool pool(4);
  Scenario s(150);
  s.collude(0, 1, 30).collude(10, 11, 40).collude(70, 140, 25);
  for (rating::NodeId id : {0u, 1u, 10u, 11u, 70u, 140u}) {
    s.crowd(20, 60, id, 0.05);
    s.set_rep(id, 0.2);
  }
  const auto matrix = s.build();
  BasicCollusionDetector serial(config());
  BasicCollusionDetector parallel(config(), &pool);
  const auto rs = serial.detect(matrix);
  const auto rp = parallel.detect(matrix);
  ASSERT_EQ(rs.pairs.size(), rp.pairs.size());
  for (std::size_t i = 0; i < rs.pairs.size(); ++i) {
    EXPECT_EQ(rs.pairs[i].first, rp.pairs[i].first);
    EXPECT_EQ(rs.pairs[i].second, rp.pairs[i].second);
  }
}

TEST(BasicDetectorTest, EmptyMatrixYieldsNothing) {
  rating::RatingMatrix matrix(10);
  BasicCollusionDetector d(config());
  const auto report = d.detect(matrix);
  EXPECT_TRUE(report.pairs.empty());
}

TEST(BasicDetectorTest, AccompliceOfDetectedColluderFlagged) {
  // 0-1 is a classic colluding pair. 7 is a "compromised pretrusted" node:
  // it mutually boosts 0, but the crowd loves 7 (no C2 evidence).
  Scenario s(40);
  s.collude(0, 1, 50).collude(0, 7, 50);
  s.crowd(10, 40, 0, 0.05);
  s.crowd(10, 40, 1, 0.05);
  s.crowd(10, 40, 7, 0.95);
  s.set_rep(0, 0.2).set_rep(1, 0.2).set_rep(7, 0.3);

  DetectorConfig with = config();
  // Tolerant T_b so 1's positives inside 0's complement don't mask the
  // 0-1 pair (see DESIGN.md threshold discussion).
  with.complement_fraction_max = 0.7;
  with.flag_accomplices = true;
  const auto flagged = BasicCollusionDetector(with).detect(s.build());
  EXPECT_TRUE(flagged.contains(0, 1));
  EXPECT_TRUE(flagged.contains(0, 7));

  DetectorConfig without = with;
  without.flag_accomplices = false;
  const auto bare = BasicCollusionDetector(without).detect(s.build());
  EXPECT_TRUE(bare.contains(0, 1));
  EXPECT_FALSE(bare.contains(0, 7));
}

TEST(BasicDetectorTest, DeterministicAcrossCalls) {
  BasicCollusionDetector d(config());
  const auto matrix = collusion_scenario().build();
  const auto a = d.detect(matrix);
  const auto b = d.detect(matrix);
  EXPECT_EQ(a.pairs.size(), b.pairs.size());
  EXPECT_EQ(a.cost, b.cost);
}

}  // namespace
}  // namespace p2prep::core
