// Direct unit tests of the accomplice-propagation pass (core/accomplice.h).
#include "core/accomplice.h"

#include <gtest/gtest.h>

#include "tests/core/scenario.h"

namespace p2prep::core {
namespace {

using testing::Scenario;

DetectorConfig config() {
  DetectorConfig c;
  c.positive_fraction_min = 0.8;
  c.complement_fraction_max = 0.2;
  c.frequency_min = 20;
  c.high_rep_threshold = 0.05;
  c.flag_accomplices = true;
  return c;
}

PairEvidence seed_pair(rating::NodeId a, rating::NodeId b) {
  PairEvidence e;
  e.first = a;
  e.second = b;
  return e;
}

TEST(AccompliceTest, NoSeedsIsNoOp) {
  Scenario s(10);
  s.collude(0, 1, 50);
  DetectionReport report;
  propagate_accomplices(s.build(), config(), report);
  EXPECT_TRUE(report.pairs.empty());
  EXPECT_EQ(report.cost.total(), 0u);
}

TEST(AccompliceTest, DisabledFlagIsNoOp) {
  Scenario s(10);
  s.collude(0, 1, 50).collude(1, 2, 50);
  DetectionReport report;
  report.pairs.push_back(seed_pair(0, 1));
  DetectorConfig c = config();
  c.flag_accomplices = false;
  propagate_accomplices(s.build(), c, report);
  EXPECT_EQ(report.pairs.size(), 1u);
}

TEST(AccompliceTest, DirectAccompliceFound) {
  Scenario s(10);
  s.collude(0, 1, 50).collude(1, 2, 50);
  DetectionReport report;
  report.pairs.push_back(seed_pair(0, 1));
  propagate_accomplices(s.build(), config(), report);
  EXPECT_TRUE(report.contains(1, 2));
  EXPECT_EQ(report.colluders(), (std::vector<rating::NodeId>{0, 1, 2}));
  EXPECT_GT(report.cost.total(), 0u);
}

TEST(AccompliceTest, PropagatesTransitivelyToFixpoint) {
  // Chain 0-1-2-3-4, seeded only with (0,1): all links must surface.
  Scenario s(12);
  for (rating::NodeId k = 0; k < 4; ++k)
    s.collude(k, static_cast<rating::NodeId>(k + 1), 40);
  DetectionReport report;
  report.pairs.push_back(seed_pair(0, 1));
  propagate_accomplices(s.build(), config(), report);
  for (rating::NodeId k = 0; k < 4; ++k)
    EXPECT_TRUE(report.contains(k, static_cast<rating::NodeId>(k + 1)))
        << "link " << k;
  EXPECT_EQ(report.colluders().size(), 5u);
}

TEST(AccompliceTest, OneDirectionalBoosterNotAnAccomplice) {
  // Node 2 boosts colluder 0 but is never boosted back: mutuality fails.
  Scenario s(10);
  s.collude(0, 1, 50);
  s.rate(2, 0, 50, rating::Score::kPositive);
  DetectionReport report;
  report.pairs.push_back(seed_pair(0, 1));
  propagate_accomplices(s.build(), config(), report);
  EXPECT_FALSE(report.contains(0, 2));
}

TEST(AccompliceTest, InfrequentMutualRatersNotAccomplices) {
  Scenario s(10);
  s.collude(0, 1, 50);
  s.collude(0, 2, 10);  // mutual but below T_N
  DetectionReport report;
  report.pairs.push_back(seed_pair(0, 1));
  propagate_accomplices(s.build(), config(), report);
  EXPECT_FALSE(report.contains(0, 2));
}

TEST(AccompliceTest, MostlyNegativeMutualRatersNotAccomplices) {
  Scenario s(10);
  s.collude(0, 1, 50);
  s.rate(0, 2, 40, rating::Score::kNegative);
  s.rate(2, 0, 40, rating::Score::kNegative);
  DetectionReport report;
  report.pairs.push_back(seed_pair(0, 1));
  propagate_accomplices(s.build(), config(), report);
  EXPECT_FALSE(report.contains(0, 2));
}

TEST(AccompliceTest, ReportStaysCanonicalAndDeduplicated) {
  Scenario s(10);
  s.collude(0, 1, 50).collude(1, 2, 50).collude(0, 2, 50);  // triangle
  DetectionReport report;
  report.pairs.push_back(seed_pair(0, 1));
  report.pairs.push_back(seed_pair(2, 1));  // unordered duplicate seed form
  propagate_accomplices(s.build(), config(), report);
  ASSERT_EQ(report.pairs.size(), 3u);
  for (std::size_t i = 0; i < report.pairs.size(); ++i) {
    EXPECT_LT(report.pairs[i].first, report.pairs[i].second);
    if (i > 0) {
      EXPECT_LT(pair_key(report.pairs[i - 1].first,
                         report.pairs[i - 1].second),
                pair_key(report.pairs[i].first, report.pairs[i].second));
    }
  }
}

TEST(AccompliceTest, EvidenceFieldsFilled) {
  Scenario s(10);
  s.collude(0, 1, 50).collude(1, 2, 30);
  s.crowd(4, 10, 2, 0.9);
  DetectionReport report;
  report.pairs.push_back(seed_pair(0, 1));
  propagate_accomplices(s.build(), config(), report);
  const PairEvidence* found = nullptr;
  for (const auto& e : report.pairs) {
    if (pair_key(e.first, e.second) == pair_key(1, 2)) found = &e;
  }
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->ratings_to_first, 30u);   // node 1 rated by 2
  EXPECT_EQ(found->ratings_to_second, 30u);  // node 2 rated by 1
  EXPECT_DOUBLE_EQ(found->positive_fraction_first, 1.0);
  EXPECT_NEAR(found->complement_fraction_second, 0.9, 0.15);
}

}  // namespace
}  // namespace p2prep::core
