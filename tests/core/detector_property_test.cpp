// Threshold-grid property sweep: plant one pair with *constructed* (a, b,
// N) statistics and assert both detectors flag it exactly when the
// thresholds admit those statistics — the detection predicate as a truth
// table rather than a scenario.
#include <gtest/gtest.h>

#include <tuple>

#include "core/basic_detector.h"
#include "core/optimized_detector.h"
#include "rating/matrix.h"
#include "rating/store.h"

namespace p2prep::core {
namespace {

struct GridPoint {
  // Constructed pair statistics (both directions symmetric).
  std::uint32_t pair_total;
  double pair_positive_fraction;  // realized exactly (counts chosen apart)
  double complement_positive_fraction;
  // Thresholds under test.
  double t_a;
  double t_b;
  std::uint32_t t_n;
};

class DetectorGridTest : public ::testing::TestWithParam<GridPoint> {};

rating::RatingMatrix build_world(const GridPoint& g) {
  // 2 colluders + 40 crowd raters; counts chosen so fractions are exact.
  constexpr std::size_t kNodes = 42;
  rating::RatingStore store(kNodes);
  const auto pair_pos = static_cast<std::uint32_t>(
      g.pair_positive_fraction * g.pair_total + 0.5);
  auto plant = [&](rating::NodeId rater, rating::NodeId ratee) {
    for (std::uint32_t k = 0; k < g.pair_total; ++k) {
      store.ingest({rater, ratee,
                    k < pair_pos ? rating::Score::kPositive
                                 : rating::Score::kNegative,
                    0});
    }
  };
  plant(0, 1);
  plant(1, 0);
  const auto comp_pos = static_cast<std::uint32_t>(
      g.complement_positive_fraction * 40 + 0.5);
  for (rating::NodeId r = 2; r < kNodes; ++r) {
    const auto score = (r - 2) < comp_pos ? rating::Score::kPositive
                                          : rating::Score::kNegative;
    store.ingest({r, 0, score, 0});
    store.ingest({r, 1, score, 0});
  }
  std::vector<double> reps(kNodes, 0.0);
  reps[0] = reps[1] = 1.0;  // both high-reputed
  return rating::RatingMatrix::build(store, reps, 0.05, g.t_n);
}

bool expected_flagged(const GridPoint& g) {
  const auto pair_pos = static_cast<std::uint32_t>(
      g.pair_positive_fraction * g.pair_total + 0.5);
  const double a =
      static_cast<double>(pair_pos) / static_cast<double>(g.pair_total);
  const auto comp_pos = static_cast<std::uint32_t>(
      g.complement_positive_fraction * 40 + 0.5);
  const double b = static_cast<double>(comp_pos) / 40.0;
  return g.pair_total >= g.t_n && a >= g.t_a && b < g.t_b;
}

TEST_P(DetectorGridTest, FlaggedIffThresholdsAdmit) {
  const GridPoint g = GetParam();
  DetectorConfig config;
  config.positive_fraction_min = g.t_a;
  config.complement_fraction_max = g.t_b;
  config.frequency_min = g.t_n;
  config.high_rep_threshold = 0.05;
  config.flag_accomplices = false;

  const auto matrix = build_world(g);
  const bool expected = expected_flagged(g);

  const auto basic = BasicCollusionDetector(config).detect(matrix);
  EXPECT_EQ(basic.contains(0, 1), expected)
      << "basic: N=" << g.pair_total << " a~" << g.pair_positive_fraction
      << " b~" << g.complement_positive_fraction << " Ta=" << g.t_a
      << " Tb=" << g.t_b << " TN=" << g.t_n;

  const auto optimized = OptimizedCollusionDetector(config).detect(matrix);
  EXPECT_EQ(optimized.contains(0, 1), expected)
      << "optimized: N=" << g.pair_total << " a~"
      << g.pair_positive_fraction << " b~"
      << g.complement_positive_fraction << " Ta=" << g.t_a
      << " Tb=" << g.t_b << " TN=" << g.t_n;
}

std::vector<GridPoint> grid() {
  std::vector<GridPoint> points;
  for (std::uint32_t total : {10u, 20u, 40u}) {
    for (double a : {1.0, 0.9, 0.6}) {
      for (double b : {0.05, 0.25, 0.6}) {
        for (double t_a : {0.8, 0.95}) {
          for (double t_b : {0.2, 0.5}) {
            for (std::uint32_t t_n : {20u, 35u}) {
              points.push_back({total, a, b, t_a, t_b, t_n});
            }
          }
        }
      }
    }
  }
  return points;
}

INSTANTIATE_TEST_SUITE_P(Grid, DetectorGridTest,
                         ::testing::ValuesIn(grid()));

}  // namespace
}  // namespace p2prep::core
