#include "core/calibration.h"

#include <gtest/gtest.h>

#include "core/basic_detector.h"
#include "rating/matrix.h"
#include "util/rng.h"

namespace p2prep::core {
namespace {

/// World with planted colluders: normal pairs interact 1-4 times, colluder
/// pairs 30-60 times with opposite score patterns.
struct World {
  rating::RatingStore store{200};
  std::vector<std::pair<rating::NodeId, rating::NodeId>> planted;
};

World make_world(std::uint64_t seed, std::size_t colluder_pairs = 4) {
  World w;
  util::Rng rng(seed);
  for (std::size_t p = 0; p < colluder_pairs; ++p) {
    const auto a = static_cast<rating::NodeId>(2 * p);
    const auto b = static_cast<rating::NodeId>(2 * p + 1);
    w.planted.emplace_back(a, b);
    const auto count = 30 + rng.next_below(31);
    for (std::uint64_t k = 0; k < count; ++k) {
      w.store.ingest({a, b, rating::Score::kPositive, k});
      w.store.ingest({b, a, rating::Score::kPositive, k});
    }
  }
  for (rating::NodeId rater = 0; rater < 200; ++rater) {
    const std::size_t targets = 2 + rng.next_below(6);
    for (std::size_t t = 0; t < targets; ++t) {
      auto ratee = static_cast<rating::NodeId>(rng.next_below(200));
      if (ratee == rater) ratee = static_cast<rating::NodeId>((ratee + 1) % 200);
      const bool colluder_target = ratee < 2 * colluder_pairs;
      // A colluder never organically downrates its own partner (that
      // would dilute the very campaign it is running).
      if (colluder_target && rater < 2 * colluder_pairs &&
          (rater ^ 1u) == ratee) {
        continue;
      }
      const std::size_t reps = 1 + rng.next_below(3);
      for (std::size_t r = 0; r < reps; ++r) {
        w.store.ingest({rater, ratee,
                        rng.chance(colluder_target ? 0.05 : 0.85)
                            ? rating::Score::kPositive
                            : rating::Score::kNegative,
                        0});
      }
    }
  }
  return w;
}

TEST(CalibrationTest, EmptyHistoryKeepsBase) {
  rating::RatingStore empty(10);
  DetectorConfig base;
  base.positive_fraction_min = 0.77;
  const CalibrationReport r = calibrate_thresholds(empty, {}, base);
  EXPECT_EQ(r.rated_pairs, 0u);
  EXPECT_DOUBLE_EQ(r.suggested.positive_fraction_min, 0.77);
}

TEST(CalibrationTest, FrequencyThresholdSeparatesPopulations) {
  const World w = make_world(5);
  const CalibrationReport r = calibrate_thresholds(w.store);
  // Normal pairs rate a handful of times; colluders >= 30. T_N must land
  // strictly between the populations.
  EXPECT_GT(r.suggested.frequency_min, 5u);
  EXPECT_LE(r.suggested.frequency_min, 30u);
  EXPECT_GE(r.frequent_pairs, 2u * w.planted.size());
  EXPECT_LT(r.mean_pair_count, 5.0);
  EXPECT_GE(r.max_pair_count, 30.0);
}

TEST(CalibrationTest, PopulationStatisticsMatchConstruction) {
  const World w = make_world(7);
  const CalibrationReport r = calibrate_thresholds(w.store);
  // Frequent pairs are dominated by the all-positive collusion campaigns.
  EXPECT_GT(r.frequent_positive_fraction, 0.9);
  // Their ratees' complements are the 5%-positive organic ratings.
  EXPECT_LT(r.frequent_complement_fraction, 0.3);
  // Global baseline sits near the 85% honest service level.
  EXPECT_GT(r.global_positive_fraction, 0.6);
  EXPECT_LT(r.global_positive_fraction, 0.95);
}

TEST(CalibrationTest, ThresholdsSitBetweenPopulations) {
  const World w = make_world(11);
  const CalibrationReport r = calibrate_thresholds(w.store);
  EXPECT_GT(r.suggested.positive_fraction_min,
            r.global_positive_fraction);
  EXPECT_LT(r.suggested.positive_fraction_min,
            r.frequent_positive_fraction);
  EXPECT_GT(r.suggested.complement_fraction_max,
            r.frequent_complement_fraction);
  EXPECT_LT(r.suggested.complement_fraction_max,
            r.global_positive_fraction);
}

TEST(CalibrationTest, CalibratedDetectorFindsAllPlantedPairs) {
  // The point of the exercise: calibrate on the history, detect with the
  // suggested thresholds, recover exactly the planted colluders.
  for (std::uint64_t seed : {13ull, 17ull, 19ull}) {
    const World w = make_world(seed);
    const CalibrationReport r = calibrate_thresholds(w.store);

    std::vector<double> reps(200);
    for (rating::NodeId i = 0; i < 200; ++i)
      reps[i] = static_cast<double>(
          w.store.window_totals(i).reputation_delta());
    DetectorConfig cfg = r.suggested;
    cfg.high_rep_threshold = 0.0;
    const auto matrix = rating::RatingMatrix::build(
        w.store, reps, cfg.high_rep_threshold, cfg.frequency_min);

    const auto report = BasicCollusionDetector(cfg).detect(matrix);
    for (const auto& [a, b] : w.planted)
      EXPECT_TRUE(report.contains(a, b)) << "seed " << seed;
    EXPECT_EQ(report.pairs.size(), w.planted.size()) << "seed " << seed;
  }
}

TEST(CalibrationTest, NoFrequentPairsRaisesTN) {
  // Purely organic history: T_N must land above everything observed.
  World w = make_world(23, /*colluder_pairs=*/0);
  CalibrationOptions options;
  options.frequent_pair_fraction = 0.0;  // nothing qualifies
  const CalibrationReport r = calibrate_thresholds(w.store, options);
  EXPECT_EQ(r.frequent_pairs, 0u);
  EXPECT_GT(static_cast<double>(r.suggested.frequency_min),
            r.max_pair_count);
}

}  // namespace
}  // namespace p2prep::core
