// Loopback integration tests for the RPC front-end: a real RpcServer on an
// ephemeral 127.0.0.1 port, exercised through RpcClient for the RPCs
// and through a raw socket for the adversarial paths (unknown type,
// version skew, corrupt frames, slowloris stalls, connection-limit
// GoAway) that a well-behaved client never produces.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "rating/types.h"
#include "rpc/client.h"
#include "rpc/protocol.h"
#include "rpc/server.h"
#include "service/service.h"

namespace p2prep::rpc {
namespace {

using rating::Rating;
using rating::Score;

service::ServiceConfig svc_config(std::size_t nodes = 64) {
  service::ServiceConfig cfg;
  cfg.num_nodes = nodes;
  cfg.num_shards = 2;
  cfg.epoch_ratings = 1u << 30;  // epochs only via force_epoch()
  cfg.record_reports = false;
  return cfg;
}

RpcClientConfig client_config(std::uint16_t port) {
  RpcClientConfig cfg;
  cfg.port = port;
  cfg.request_timeout_ms = 5000;
  return cfg;
}

/// Minimal raw TCP peer speaking just enough framing to misbehave.
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = fd_ >= 0 &&
                 ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] bool connected() const { return connected_; }

  bool send_bytes(std::string_view data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Receives one complete frame's payload; nullopt on EOF, timeout, or a
  /// corrupt stream.
  std::optional<std::string> recv_frame(int timeout_ms = 3000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      std::string_view payload;
      std::size_t consumed = 0;
      switch (try_decode_frame(buf_, kDefaultMaxFrameBytes, &payload,
                               &consumed)) {
        case FrameResult::kFrame: {
          std::string out(payload);
          buf_.erase(0, consumed);
          return out;
        }
        case FrameResult::kError:
          return std::nullopt;
        case FrameResult::kNeedMore:
          break;
      }
      if (!read_some(deadline)) return std::nullopt;
    }
  }

  /// True when the peer closes the connection within timeout_ms.
  bool wait_eof(int timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return false;
      pollfd p{fd_, POLLIN, 0};
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - now)
                            .count();
      if (::poll(&p, 1, static_cast<int>(left)) <= 0) continue;
      char tmp[4096];
      const ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
      if (n <= 0) return true;  // EOF or reset — either way, closed
      buf_.append(tmp, static_cast<std::size_t>(n));
    }
  }

 private:
  bool read_some(std::chrono::steady_clock::time_point deadline) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    pollfd p{fd_, POLLIN, 0};
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - now)
                          .count();
    if (::poll(&p, 1, static_cast<int>(left)) <= 0) return false;
    char tmp[4096];
    const ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
    if (n <= 0) return false;
    buf_.append(tmp, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

std::string framed_request(std::uint8_t version, std::uint8_t type,
                           std::uint64_t request_id,
                           std::string_view body = {}) {
  std::string payload;
  put_u8(payload, version);
  put_u8(payload, type);
  put_u64(payload, request_id);
  payload.append(body);
  return encode_frame(payload);
}

std::optional<ResponseHeader> parse_response(const std::string& payload) {
  Reader r(payload);
  ResponseHeader h;
  if (!decode_response_header(r, h)) return std::nullopt;
  return h;
}

TEST(RpcLoopback, AllSixRpcsRoundTrip) {
  service::ReputationService svc(svc_config());
  RpcServer server(svc, RpcServerConfig{});
  RpcClient client(client_config(server.port()));
  ASSERT_TRUE(client.connect());

  // Ping.
  EXPECT_EQ(client.ping().status, Status::kOk);

  // SubmitRating: valid accepted, self-rating rejected as invalid.
  EXPECT_EQ(client.submit_rating({1, 2, Score::kPositive, 1}).status,
            Status::kOk);
  EXPECT_EQ(client.submit_rating({5, 5, Score::kPositive, 1}).status,
            Status::kInvalidArgument);

  // SubmitBatch: mixed validity; invalid entries are counted, not fatal.
  std::vector<Rating> batch;
  for (std::uint32_t k = 0; k < 20; ++k)
    batch.push_back({k % 8, (k % 8) + 8,
                     k % 2 == 0 ? Score::kPositive : Score::kNegative,
                     10 + k});
  batch.push_back({3, 3, Score::kPositive, 99});  // self-rating → rejected
  const auto outcome = client.submit_batch(batch);
  EXPECT_TRUE(outcome.complete) << outcome.error;
  EXPECT_EQ(outcome.accepted, 20u);
  EXPECT_EQ(outcome.rejected, 1u);

  svc.force_epoch();
  svc.drain();

  // QueryReputation agrees with the service's own snapshot.
  const service::ServiceSnapshot snap = svc.snapshot();
  QueryReputationResponse rep;
  ASSERT_EQ(client.query_reputation(9, &rep).status, Status::kOk);
  EXPECT_EQ(rep.reputation, snap.reputation(9));
  EXPECT_EQ(rep.suspected != 0, snap.suspected(9));
  EXPECT_EQ(rep.shard, svc.shard_of(9));

  // QueryColluders agrees with a full snapshot scan.
  std::vector<rating::NodeId> expected;
  for (rating::NodeId i = 0; i < svc.config().num_nodes; ++i)
    if (snap.suspected(i)) expected.push_back(i);
  QueryColludersResponse col;
  ASSERT_EQ(client.query_colluders(&col).status, Status::kOk);
  EXPECT_EQ(col.colluders, expected);
  EXPECT_EQ(col.total_suspected, expected.size());
  EXPECT_EQ(col.truncated, 0);

  // GetMetrics reflects both service and RPC traffic.
  service::ServiceMetrics m;
  ASSERT_EQ(client.get_metrics(&m).status, Status::kOk);
  EXPECT_EQ(m.ratings_accepted, 21u);  // 1 single + 20 batch
  EXPECT_EQ(m.ratings_applied, 21u);
  EXPECT_GE(m.rpc_requests, 6u);
  EXPECT_EQ(m.rpc_active_connections, 1u);
  EXPECT_GT(m.rpc_bytes_in, 0u);
  EXPECT_GT(m.rpc_bytes_out, 0u);
  EXPECT_EQ(m.rpc_shed, 0u);

  svc.stop();
}

TEST(RpcLoopback, ResizeRpcGrowsTheServiceOnline) {
  service::ReputationService svc(svc_config());
  RpcServer server(svc, RpcServerConfig{});
  RpcClient client(client_config(server.port()));
  ASSERT_TRUE(client.connect());

  for (std::uint32_t k = 0; k < 30; ++k)
    ASSERT_EQ(client.submit_rating({k % 8, (k % 8) + 8, Score::kPositive,
                                    k}).status,
              Status::kOk);

  ResizeResponse out;
  ASSERT_EQ(client.resize(4, &out).status, Status::kOk);
  EXPECT_EQ(out.num_shards, 4u);
  EXPECT_GT(out.keys_moved, 0u);
  EXPECT_EQ(svc.num_shards(), 4u);

  // The service keeps serving at the new width on the same connection.
  EXPECT_EQ(client.submit_rating({1, 2, Score::kPositive, 99}).status,
            Status::kOk);
  QueryReputationResponse rep;
  ASSERT_EQ(client.query_reputation(9, &rep).status, Status::kOk);
  EXPECT_EQ(rep.shard, svc.shard_of(9));

  // Metrics carry the new shard-map gauges over the wire.
  service::ServiceMetrics m;
  ASSERT_EQ(client.get_metrics(&m).status, Status::kOk);
  EXPECT_EQ(m.current_shard_count, 4u);
  EXPECT_EQ(m.shard_map_epoch, 1u);
  EXPECT_EQ(m.resizes_completed, 1u);
  EXPECT_EQ(m.keys_moved_last_resize, out.keys_moved);

  svc.drain();
  svc.stop();
}

TEST(RpcLoopback, InvalidResizeIsRejectedWithCurrentWidth) {
  service::ReputationService svc(svc_config());
  RpcServer server(svc, RpcServerConfig{});
  RpcClient client(client_config(server.port()));
  ASSERT_TRUE(client.connect());

  ResizeResponse out;
  EXPECT_EQ(client.resize(0, &out).status, Status::kInvalidArgument);
  EXPECT_EQ(out.num_shards, 2u);  // the failure response reports reality
  EXPECT_EQ(client.ping().status, Status::kOk);  // connection survives
  svc.stop();
}

TEST(RpcLoopback, QueryOutOfRangeNodeIsInvalidArgument) {
  service::ReputationService svc(svc_config(16));
  RpcServer server(svc, RpcServerConfig{});
  RpcClient client(client_config(server.port()));
  ASSERT_TRUE(client.connect());

  QueryReputationResponse rep;
  EXPECT_EQ(client.query_reputation(16, &rep).status,
            Status::kInvalidArgument);
  EXPECT_EQ(client.ping().status, Status::kOk);  // connection survives
  svc.stop();
}

TEST(RpcLoopback, UnknownTypeAnsweredWithoutDroppingConnection) {
  service::ReputationService svc(svc_config());
  RpcServer server(svc, RpcServerConfig{});
  RawConn raw(server.port());
  ASSERT_TRUE(raw.connected());

  ASSERT_TRUE(raw.send_bytes(framed_request(kProtocolVersion, 0x55, 7)));
  auto payload = raw.recv_frame();
  ASSERT_TRUE(payload.has_value());
  auto h = parse_response(*payload);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->status, Status::kUnsupportedType);
  EXPECT_EQ(h->request_id, 7u);

  // Frame boundaries stayed trustworthy: a good request still works.
  ASSERT_TRUE(raw.send_bytes(framed_request(
      kProtocolVersion, static_cast<std::uint8_t>(MsgType::kPing), 8)));
  payload = raw.recv_frame();
  ASSERT_TRUE(payload.has_value());
  h = parse_response(*payload);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->status, Status::kOk);
  svc.stop();
}

TEST(RpcLoopback, VersionSkewAnsweredWithoutDroppingConnection) {
  service::ReputationService svc(svc_config());
  RpcServer server(svc, RpcServerConfig{});
  RawConn raw(server.port());
  ASSERT_TRUE(raw.connected());

  ASSERT_TRUE(raw.send_bytes(framed_request(
      kProtocolVersion + 1, static_cast<std::uint8_t>(MsgType::kPing), 3)));
  const auto payload = raw.recv_frame();
  ASSERT_TRUE(payload.has_value());
  const auto h = parse_response(*payload);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->status, Status::kUnsupportedVersion);
  EXPECT_EQ(h->request_id, 3u);
  svc.stop();
}

TEST(RpcLoopback, CorruptCrcDropsConnection) {
  service::ReputationService svc(svc_config());
  RpcServer server(svc, RpcServerConfig{});
  RawConn raw(server.port());
  ASSERT_TRUE(raw.connected());

  std::string bad = framed_request(
      kProtocolVersion, static_cast<std::uint8_t>(MsgType::kPing), 1);
  bad[4] = static_cast<char>(bad[4] ^ 0xff);  // CRC field
  ASSERT_TRUE(raw.send_bytes(bad));
  EXPECT_TRUE(raw.wait_eof(3000));
  EXPECT_GE(server.stats().protocol_errors, 1u);
  svc.stop();
}

TEST(RpcLoopback, OversizedLengthDropsConnection) {
  service::ReputationService svc(svc_config());
  RpcServer server(svc, RpcServerConfig{});
  RawConn raw(server.port());
  ASSERT_TRUE(raw.connected());

  std::string hostile;
  put_u32(hostile, 0xffffffffu);  // 4 GiB frame claim
  put_u32(hostile, 0);
  ASSERT_TRUE(raw.send_bytes(hostile));
  EXPECT_TRUE(raw.wait_eof(3000));
  svc.stop();
}

TEST(RpcLoopback, IdleConnectionIsClosed) {
  service::ReputationService svc(svc_config());
  RpcServerConfig cfg;
  cfg.idle_timeout_ms = 100;
  RpcServer server(svc, cfg);
  RawConn raw(server.port());
  ASSERT_TRUE(raw.connected());

  EXPECT_TRUE(raw.wait_eof(3000));
  EXPECT_GE(server.stats().idle_closed, 1u);
  svc.stop();
}

TEST(RpcLoopback, StalledPartialFrameIsClosed) {
  // Slowloris guard: half a frame then silence must not hold the
  // connection open until the (much longer) idle timeout.
  service::ReputationService svc(svc_config());
  RpcServerConfig cfg;
  cfg.request_timeout_ms = 100;
  cfg.idle_timeout_ms = 60000;
  RpcServer server(svc, cfg);
  RawConn raw(server.port());
  ASSERT_TRUE(raw.connected());

  const std::string frame = framed_request(
      kProtocolVersion, static_cast<std::uint8_t>(MsgType::kPing), 1);
  ASSERT_TRUE(raw.send_bytes(frame.substr(0, frame.size() - 3)));
  EXPECT_TRUE(raw.wait_eof(3000));
  EXPECT_GE(server.stats().request_timeouts, 1u);
  svc.stop();
}

TEST(RpcLoopback, ConnectionLimitSendsGoAwayWithBackoffHint) {
  service::ReputationService svc(svc_config());
  RpcServerConfig cfg;
  cfg.max_connections = 1;
  cfg.shed_backoff_ms = 75;
  RpcServer server(svc, cfg);

  RpcClient first(client_config(server.port()));
  ASSERT_TRUE(first.connect());
  ASSERT_EQ(first.ping().status, Status::kOk);  // slot is definitely taken

  RawConn second(server.port());
  ASSERT_TRUE(second.connected());  // kernel accepts; server refuses
  const auto payload = second.recv_frame();
  ASSERT_TRUE(payload.has_value());
  const auto h = parse_response(*payload);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->type, static_cast<std::uint8_t>(MsgType::kGoAway));
  EXPECT_EQ(h->request_id, 0u);
  EXPECT_EQ(h->status, Status::kRetryLater);
  EXPECT_EQ(h->backoff_hint_ms, 75u);
  EXPECT_TRUE(second.wait_eof(3000));
  EXPECT_GE(server.stats().connections_rejected, 1u);
  svc.stop();
}

TEST(RpcLoopback, ClientTimesOutAgainstSilentServer) {
  // A listener that never accepts or answers: the kernel completes the TCP
  // handshake from the backlog, so connect succeeds and the request-level
  // deadline is what must fire.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);

  RpcClientConfig cfg;
  cfg.port = ntohs(addr.sin_port);
  cfg.request_timeout_ms = 150;
  RpcClient client(cfg);
  ASSERT_TRUE(client.connect());

  const auto start = std::chrono::steady_clock::now();
  const CallResult res = client.ping();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_FALSE(res.ok);
  EXPECT_LT(elapsed, 5000);
  EXPECT_FALSE(client.connected());  // timeout tears the connection down
  EXPECT_GE(client.stats().transport_errors, 1u);
  ::close(listen_fd);
}

TEST(RpcLoopback, GracefulShutdownStopsServingAndAccepting) {
  service::ReputationService svc(svc_config());
  auto server = std::make_unique<RpcServer>(svc, RpcServerConfig{});
  const std::uint16_t port = server->port();

  RpcClient client(client_config(port));
  ASSERT_TRUE(client.connect());
  ASSERT_EQ(client.submit_rating({1, 2, Score::kPositive, 1}).status,
            Status::kOk);

  server->shutdown();

  // The drained connection is closed; a fresh connect finds no listener.
  EXPECT_FALSE(client.ping().ok);
  RpcClient late(client_config(port));
  EXPECT_FALSE(late.connect());

  // The accepted rating survived into the service.
  svc.force_epoch();
  svc.drain();
  EXPECT_EQ(svc.metrics().ratings_applied, 1u);
  server.reset();
  svc.stop();
}

}  // namespace
}  // namespace p2prep::rpc
