// Wire-format tests for the RPC protocol (rpc/protocol.h): scalar and
// body round trips, framing under truncation at every prefix length, CRC
// corruption at every byte offset, hostile length/count fields, and
// envelope versioning. These are the decoder's fuzz-ish adversarial suite —
// nothing here opens a socket.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "rating/types.h"
#include "rpc/protocol.h"

namespace p2prep::rpc {
namespace {

using rating::Rating;
using rating::Score;

TEST(RpcProtocol, ScalarRoundTrip) {
  std::string buf;
  put_u8(buf, 0xab);
  put_u16(buf, 0xbeef);
  put_u32(buf, 0xdeadbeefu);
  put_u64(buf, 0x0123456789abcdefull);
  put_f64(buf, -2.5);

  Reader r(buf);
  std::uint8_t a = 0;
  std::uint16_t b = 0;
  std::uint32_t c = 0;
  std::uint64_t d = 0;
  double e = 0.0;
  ASSERT_TRUE(r.get_u8(a));
  ASSERT_TRUE(r.get_u16(b));
  ASSERT_TRUE(r.get_u32(c));
  ASSERT_TRUE(r.get_u64(d));
  ASSERT_TRUE(r.get_f64(e));
  EXPECT_EQ(a, 0xab);
  EXPECT_EQ(b, 0xbeef);
  EXPECT_EQ(c, 0xdeadbeefu);
  EXPECT_EQ(d, 0x0123456789abcdefull);
  EXPECT_EQ(e, -2.5);
  EXPECT_TRUE(r.done());
  EXPECT_FALSE(r.get_u8(a));  // underrun reported, not UB
}

TEST(RpcProtocol, ScalarsAreLittleEndian) {
  std::string buf;
  put_u32(buf, 0x04030201u);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(static_cast<std::uint8_t>(buf[0]), 1);
  EXPECT_EQ(static_cast<std::uint8_t>(buf[3]), 4);
}

TEST(RpcProtocol, FrameRoundTrip) {
  const std::string framed = encode_frame("hello rpc");
  ASSERT_EQ(framed.size(), kFrameHeaderBytes + 9);

  std::string_view payload;
  std::size_t consumed = 0;
  ASSERT_EQ(try_decode_frame(framed, kDefaultMaxFrameBytes, &payload,
                             &consumed),
            FrameResult::kFrame);
  EXPECT_EQ(payload, "hello rpc");
  EXPECT_EQ(consumed, framed.size());
}

TEST(RpcProtocol, EmptyPayloadFrame) {
  const std::string framed = encode_frame("");
  std::string_view payload;
  std::size_t consumed = 0;
  ASSERT_EQ(try_decode_frame(framed, kDefaultMaxFrameBytes, &payload,
                             &consumed),
            FrameResult::kFrame);
  EXPECT_TRUE(payload.empty());
  EXPECT_EQ(consumed, kFrameHeaderBytes);
}

TEST(RpcProtocol, TruncationAtEveryPrefixNeedsMore) {
  const std::string framed = encode_frame("truncate me anywhere");
  for (std::size_t len = 0; len < framed.size(); ++len) {
    std::string_view payload;
    std::size_t consumed = 0;
    EXPECT_EQ(try_decode_frame(framed.substr(0, len), kDefaultMaxFrameBytes,
                               &payload, &consumed),
              FrameResult::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(RpcProtocol, CorruptionAtEveryByteNeverYieldsAFrame) {
  // Flipping any single byte must never produce a valid frame: payload or
  // CRC flips fail the checksum, length flips either shrink the payload
  // (CRC mismatch), grow it (kNeedMore), or blow the size cap (kError).
  const std::string framed = encode_frame("integrity matters here");
  for (std::size_t i = 0; i < framed.size(); ++i) {
    std::string bad = framed;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    std::string_view payload;
    std::size_t consumed = 0;
    EXPECT_NE(try_decode_frame(bad, kDefaultMaxFrameBytes, &payload,
                               &consumed),
              FrameResult::kFrame)
        << "flipped byte " << i;
  }
}

TEST(RpcProtocol, OversizedLengthIsAnError) {
  std::string hostile;
  put_u32(hostile, std::numeric_limits<std::uint32_t>::max());  // 4 GiB claim
  put_u32(hostile, 0);
  std::string_view payload;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(try_decode_frame(hostile, kDefaultMaxFrameBytes, &payload,
                             &consumed, &error),
            FrameResult::kError);
  EXPECT_FALSE(error.empty());

  // A length just past the configured cap is equally corrupt, even though
  // the bytes are not present yet — the decoder must not wait for 4 GiB.
  std::string over;
  put_u32(over, 65);
  put_u32(over, 0);
  EXPECT_EQ(try_decode_frame(over, /*max_frame_bytes=*/64, &payload,
                             &consumed),
            FrameResult::kError);
}

TEST(RpcProtocol, BadCrcIsAnError) {
  std::string framed = encode_frame("payload");
  framed[4] = static_cast<char>(framed[4] ^ 0xff);  // CRC field
  std::string_view payload;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(try_decode_frame(framed, kDefaultMaxFrameBytes, &payload,
                             &consumed, &error),
            FrameResult::kError);
  EXPECT_NE(error.find("CRC"), std::string::npos);
}

TEST(RpcProtocol, BackToBackFramesDecodeInOrder) {
  std::string stream = encode_frame("first") + encode_frame("second");
  std::string_view payload;
  std::size_t consumed = 0;
  ASSERT_EQ(try_decode_frame(stream, kDefaultMaxFrameBytes, &payload,
                             &consumed),
            FrameResult::kFrame);
  EXPECT_EQ(payload, "first");
  stream.erase(0, consumed);
  ASSERT_EQ(try_decode_frame(stream, kDefaultMaxFrameBytes, &payload,
                             &consumed),
            FrameResult::kFrame);
  EXPECT_EQ(payload, "second");
  EXPECT_EQ(consumed, stream.size());
}

TEST(RpcProtocol, RequestHeaderRoundTrip) {
  std::string buf;
  encode_request_header(buf, MsgType::kSubmitBatch, 42);
  Reader r(buf);
  RequestHeader h;
  ASSERT_TRUE(decode_request_header(r, h));
  EXPECT_EQ(h.version, kProtocolVersion);
  EXPECT_EQ(h.type, static_cast<std::uint8_t>(MsgType::kSubmitBatch));
  EXPECT_EQ(h.request_id, 42u);
  EXPECT_TRUE(r.done());
}

TEST(RpcProtocol, RequestHeaderReportsVersionSkewInsteadOfFailing) {
  // The envelope is forward-stable: a future version must still decode so
  // the server can answer kUnsupportedVersion rather than drop the link.
  std::string buf;
  put_u8(buf, kProtocolVersion + 7);
  put_u8(buf, static_cast<std::uint8_t>(MsgType::kPing));
  put_u64(buf, 1);
  Reader r(buf);
  RequestHeader h;
  ASSERT_TRUE(decode_request_header(r, h));
  EXPECT_EQ(h.version, kProtocolVersion + 7);
}

TEST(RpcProtocol, ResponseHeaderRoundTrip) {
  ResponseHeader in;
  in.type = static_cast<std::uint8_t>(MsgType::kSubmitRating);
  in.request_id = 7;
  in.status = Status::kRetryLater;
  in.backoff_hint_ms = 125;
  std::string buf;
  encode_response_header(buf, in);

  Reader r(buf);
  ResponseHeader out;
  ASSERT_TRUE(decode_response_header(r, out));
  EXPECT_EQ(out.type, static_cast<std::uint8_t>(MsgType::kSubmitRating));
  EXPECT_EQ(out.request_id, 7u);
  EXPECT_EQ(out.status, Status::kRetryLater);
  EXPECT_EQ(out.backoff_hint_ms, 125u);
}

TEST(RpcProtocol, ResponseHeaderRequiresResponseBit) {
  std::string buf;
  encode_request_header(buf, MsgType::kPing, 1);  // no response bit
  put_u8(buf, 0);
  put_u32(buf, 0);
  Reader r(buf);
  ResponseHeader h;
  EXPECT_FALSE(decode_response_header(r, h));
}

TEST(RpcProtocol, SubmitRatingRoundTripIncludingNegativeScore) {
  for (const Score s : {Score::kNegative, Score::kNeutral, Score::kPositive}) {
    SubmitRatingRequest in;
    in.rating = Rating{3, 9, s, 12345};
    std::string buf;
    in.encode(buf);
    Reader r(buf);
    const auto out = SubmitRatingRequest::decode(r);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->rating.rater, 3u);
    EXPECT_EQ(out->rating.ratee, 9u);
    EXPECT_EQ(out->rating.score, s);
    EXPECT_EQ(out->rating.time, 12345u);
  }
}

TEST(RpcProtocol, SubmitRatingTruncatedAtEveryPrefixFails) {
  SubmitRatingRequest in;
  in.rating = Rating{1, 2, Score::kPositive, 3};
  std::string buf;
  in.encode(buf);
  for (std::size_t len = 0; len < buf.size(); ++len) {
    Reader r(std::string_view(buf).substr(0, len));
    EXPECT_FALSE(SubmitRatingRequest::decode(r).has_value())
        << "prefix length " << len;
  }
}

TEST(RpcProtocol, SubmitBatchRoundTrip) {
  SubmitBatchRequest in;
  for (std::uint32_t k = 0; k < 9; ++k)
    in.ratings.push_back({k, k + 1,
                          k % 2 == 0 ? Score::kPositive : Score::kNegative,
                          100 + k});
  std::string buf;
  in.encode(buf);
  Reader r(buf);
  const auto out = SubmitBatchRequest::decode(r);
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->ratings.size(), in.ratings.size());
  for (std::size_t k = 0; k < in.ratings.size(); ++k) {
    EXPECT_EQ(out->ratings[k].rater, in.ratings[k].rater);
    EXPECT_EQ(out->ratings[k].score, in.ratings[k].score);
    EXPECT_EQ(out->ratings[k].time, in.ratings[k].time);
  }
}

TEST(RpcProtocol, SubmitBatchHostileCountCannotForceAllocation) {
  // A count field claiming 2^32-1 ratings backed by zero bytes must be
  // rejected before any reserve()/resize() happens.
  std::string buf;
  put_u32(buf, std::numeric_limits<std::uint32_t>::max());
  Reader r(buf);
  EXPECT_FALSE(SubmitBatchRequest::decode(r).has_value());
}

TEST(RpcProtocol, QueryBodiesRoundTrip) {
  {
    QueryReputationRequest in;
    in.node = 77;
    std::string buf;
    in.encode(buf);
    Reader r(buf);
    const auto out = QueryReputationRequest::decode(r);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->node, 77u);
  }
  {
    QueryReputationResponse in;
    in.reputation = -3.25;
    in.suspected = 1;
    in.epoch = 12;
    in.shard = 2;
    std::string buf;
    in.encode(buf);
    Reader r(buf);
    const auto out = QueryReputationResponse::decode(r);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->reputation, -3.25);
    EXPECT_EQ(out->suspected, 1);
    EXPECT_EQ(out->epoch, 12u);
    EXPECT_EQ(out->shard, 2u);
  }
  {
    QueryColludersResponse in;
    in.colluders = {4, 9, 11};
    in.total_suspected = 100;
    in.truncated = 1;
    std::string buf;
    in.encode(buf);
    Reader r(buf);
    const auto out = QueryColludersResponse::decode(r);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->colluders, (std::vector<rating::NodeId>{4, 9, 11}));
    EXPECT_EQ(out->total_suspected, 100u);
    EXPECT_EQ(out->truncated, 1);
  }
}

TEST(RpcProtocol, GetMetricsRoundTripCoversEveryField) {
  GetMetricsResponse in;
  auto& m = in.metrics;
  m.ratings_accepted = 1;
  m.ratings_rejected = 2;
  m.ratings_dropped = 3;
  m.ratings_applied = 4;
  m.queue_depth = 5;
  m.ingest_rate_per_sec = 6.5;
  m.epochs_completed = 7;
  m.detections_total = 8;
  m.last_epoch_detections = 9;
  m.epoch_latency_ms_mean = 10.5;
  m.epoch_latency_ms_p99 = 11.5;
  m.wal_records = 12;
  m.wal_bytes = 13;
  m.checkpoints_written = 14;
  m.matrix_bytes = 15;
  m.rpc_accepted = 16;
  m.rpc_rejected = 17;
  m.rpc_requests = 18;
  m.rpc_shed = 19;
  m.rpc_bytes_in = 20;
  m.rpc_bytes_out = 21;
  m.rpc_active_connections = 22;
  m.rings_found = 23;
  m.ring_largest = 24;
  m.ring_scan_us = 25;
  m.current_shard_count = 26;
  m.shard_map_epoch = 27;
  m.resizes_completed = 28;
  m.keys_moved_last_resize = 29;
  m.last_resize_ms = 30.5;
  m.epoch_scan_threads = 31;
  m.epoch_overlap_us = 32;
  m.accomplice_exchange_rounds = 33;

  std::string buf;
  in.encode(buf);
  Reader r(buf);
  const auto out = GetMetricsResponse::decode(r);
  ASSERT_TRUE(out.has_value());
  // to_string prints every field, so string equality is field equality.
  EXPECT_EQ(out->metrics.to_string(), m.to_string());
  EXPECT_EQ(out->metrics.ingest_rate_per_sec, 6.5);
  EXPECT_EQ(out->metrics.rpc_active_connections, 22u);
  EXPECT_EQ(out->metrics.rings_found, 23u);
  EXPECT_EQ(out->metrics.ring_largest, 24u);
  EXPECT_EQ(out->metrics.ring_scan_us, 25u);
  EXPECT_EQ(out->metrics.current_shard_count, 26u);
  EXPECT_EQ(out->metrics.shard_map_epoch, 27u);
  EXPECT_EQ(out->metrics.resizes_completed, 28u);
  EXPECT_EQ(out->metrics.keys_moved_last_resize, 29u);
  EXPECT_EQ(out->metrics.last_resize_ms, 30.5);
  EXPECT_EQ(out->metrics.epoch_scan_threads, 31u);
  EXPECT_EQ(out->metrics.epoch_overlap_us, 32u);
  EXPECT_EQ(out->metrics.accomplice_exchange_rounds, 33u);
}

TEST(RpcProtocol, ResizeBodiesRoundTrip) {
  {
    ResizeRequest in;
    in.new_num_shards = 8;
    std::string buf;
    in.encode(buf);
    Reader r(buf);
    const auto out = ResizeRequest::decode(r);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->new_num_shards, 8u);
  }
  {
    ResizeResponse in;
    in.num_shards = 8;
    in.keys_moved = 1234;
    in.duration_ms = 56;
    std::string buf;
    in.encode(buf);
    Reader r(buf);
    const auto out = ResizeResponse::decode(r);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->num_shards, 8u);
    EXPECT_EQ(out->keys_moved, 1234u);
    EXPECT_EQ(out->duration_ms, 56u);
  }
  {
    Reader r(std::string_view("\x01", 1));  // underrun
    EXPECT_FALSE(ResizeRequest::decode(r).has_value());
  }
}

}  // namespace
}  // namespace p2prep::rpc
