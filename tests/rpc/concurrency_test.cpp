// Concurrency acceptance tests for the RPC front-end, and the designated
// TSan workload for it (tools/run_static_analysis.sh runs
// ctest -R 'ServiceConcurrency|ServiceBackendDifferential|RpcConcurrency'
// under P2PREP_SANITIZE=thread):
//  * ratings submitted by 4 concurrent TCP clients land byte-identically
//    (same shard checkpoint files) to the same stream ingested directly —
//    the serve path is just a transport, not a semantic fork;
//  * a deliberately saturated service sheds with kRetryLater and clients
//    recover through the hinted backoff without losing a single rating.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rating/types.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "service/service.h"
#include "util/rng.h"

namespace p2prep::rpc {
namespace {

namespace fs = std::filesystem;
using rating::Rating;
using rating::Score;

constexpr std::size_t kNodes = 40;
constexpr std::size_t kShards = 3;
constexpr int kClients = 4;

// All ratings share one tick: shard state is commutative in the rating
// order (pair counts; integer-valued engine sums) EXCEPT the shard's
// last-applied tick, which records whichever rating arrived last. A
// constant tick removes that one order-dependence, so any interleaving of
// the same multiset of ratings must checkpoint byte-identically.
constexpr rating::Tick kTick = 7;

std::vector<Rating> workload(std::size_t count) {
  std::vector<Rating> out;
  out.reserve(count);
  util::Rng rng(0xfeedu);
  while (out.size() < count) {
    const auto rater = static_cast<rating::NodeId>(rng.next_below(kNodes));
    auto ratee = static_cast<rating::NodeId>(rng.next_below(kNodes));
    if (ratee == rater) ratee = (ratee + 1) % kNodes;
    out.push_back({rater, ratee,
                   rng.chance(0.8) ? Score::kPositive : Score::kNegative,
                   kTick});
  }
  return out;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

fs::path test_dir(const std::string& leaf) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("p2prep_rpc_concurrency_" +
       std::string(
           ::testing::UnitTest::GetInstance()->current_test_info()->name()) +
       "_" + leaf);
  fs::remove_all(dir);
  return dir;
}

service::ServiceConfig durable_config(const fs::path& dir) {
  service::ServiceConfig cfg;
  cfg.num_nodes = kNodes;
  cfg.num_shards = kShards;
  cfg.epoch_ratings = 1u << 30;  // one epoch, at the final force_epoch()
  cfg.checkpoint_every_epochs = 1;
  cfg.wal_dir = dir.string();
  cfg.record_reports = false;
  return cfg;
}

TEST(RpcConcurrency, MultiClientSubmissionIsByteIdenticalToDirectIngest) {
  const auto ratings = workload(2000);
  const fs::path ref_dir = test_dir("ref");
  const fs::path rpc_dir = test_dir("rpc");

  // Reference: the same stream ingested directly (the serve-replay path).
  {
    service::ReputationService svc(durable_config(ref_dir));
    for (const auto& r : ratings) svc.ingest(r);
    svc.force_epoch();
    svc.drain();
    svc.stop();
  }

  // Four concurrent TCP clients, each submitting an interleaved quarter.
  {
    service::ReputationService svc(durable_config(rpc_dir));
    RpcServer server(svc, RpcServerConfig{});

    std::vector<std::thread> clients;
    std::vector<std::size_t> submitted(kClients, 0);
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        RpcClientConfig ccfg;
        ccfg.port = server.port();
        ccfg.backoff_initial_ms = 1;
        ccfg.max_attempts = 64;
        RpcClient client(ccfg);
        ASSERT_TRUE(client.connect());
        for (std::size_t i = static_cast<std::size_t>(c);
             i < ratings.size(); i += kClients) {
          ASSERT_EQ(client.submit_rating_with_retry(ratings[i]).status,
                    Status::kOk);
          ++submitted[static_cast<std::size_t>(c)];
        }
      });
    }
    for (auto& t : clients) t.join();
    std::size_t total = 0;
    for (const auto s : submitted) total += s;
    ASSERT_EQ(total, ratings.size());

    server.shutdown();
    svc.force_epoch();
    svc.drain();
    EXPECT_EQ(svc.metrics().ratings_applied, ratings.size());
    svc.stop();
  }

  // Every shard's checkpoint must match the reference bytewise.
  for (std::size_t s = 0; s < kShards; ++s) {
    std::ostringstream name;
    name << "shard-" << (s < 10 ? "00" : "0") << s << ".ckpt";
    const std::string ref = read_file(ref_dir / name.str());
    const std::string got = read_file(rpc_dir / name.str());
    ASSERT_FALSE(ref.empty()) << name.str() << " missing in reference run";
    EXPECT_EQ(got, ref) << name.str() << " diverged over RPC";
  }

  fs::remove_all(ref_dir);
  fs::remove_all(rpc_dir);
}

TEST(RpcConcurrency, SaturationShedsAndClientsRecoverViaBackoff) {
  // Make the service slow to drain (a global epoch barrier after every
  // single rating) and the admission budget tiny, so concurrent clients
  // are guaranteed to hit kRetryLater and must recover through backoff.
  service::ServiceConfig cfg;
  cfg.num_nodes = 16;
  cfg.num_shards = 2;
  cfg.queue_capacity = 2;
  cfg.epoch_ratings = 1;
  cfg.detector_config.frequency_min = 1000;  // keep epochs cheap
  cfg.record_reports = false;
  service::ReputationService svc(cfg);

  RpcServerConfig scfg;
  scfg.max_inflight = 2;
  scfg.shed_backoff_ms = 2;
  RpcServer server(svc, scfg);

  constexpr int kPerClient = 30;
  std::vector<std::thread> clients;
  std::vector<RpcClientStats> stats(kClients);
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      RpcClientConfig ccfg;
      ccfg.port = server.port();
      ccfg.backoff_initial_ms = 1;
      ccfg.backoff_max_ms = 50;
      ccfg.max_attempts = 1000;
      RpcClient client(ccfg);
      ASSERT_TRUE(client.connect());
      for (int k = 0; k < kPerClient; ++k) {
        const auto rater = static_cast<rating::NodeId>((c * 3 + k) % 16);
        auto ratee = static_cast<rating::NodeId>((c * 5 + k * 7 + 1) % 16);
        if (ratee == rater) ratee = (ratee + 1) % 16;
        const Rating r{rater, ratee, Score::kPositive,
                       static_cast<rating::Tick>(k)};
        ASSERT_EQ(client.submit_rating_with_retry(r).status, Status::kOk);
      }
      stats[static_cast<std::size_t>(c)] = client.stats();
    });
  }
  for (auto& t : clients) t.join();

  // The acceptance bar: at least one shed was observed server-side, at
  // least one client saw it and retried, and no rating was lost.
  EXPECT_GE(server.stats().shed, 1u);
  std::uint64_t sheds_seen = 0;
  std::uint64_t retries = 0;
  for (const auto& st : stats) {
    sheds_seen += st.sheds_seen;
    retries += st.retries;
  }
  EXPECT_GE(sheds_seen, 1u);
  EXPECT_GE(retries, sheds_seen);  // every shed was followed by a retry

  server.shutdown();
  svc.drain();
  const auto m = svc.metrics();
  EXPECT_EQ(m.ratings_accepted, kClients * kPerClient);
  EXPECT_EQ(m.ratings_applied, kClients * kPerClient);
  EXPECT_EQ(m.ratings_dropped, 0u);
  svc.stop();
}

}  // namespace
}  // namespace p2prep::rpc
