#include "trace/amazon.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "trace/analysis.h"

namespace p2prep::trace {
namespace {

AmazonTraceConfig small_config() {
  AmazonTraceConfig c;
  c.num_sellers = 30;
  c.num_buyers = 2000;
  c.days = 120;
  c.high_band_daily_mean = 10.0;
  c.medium_band_daily_mean = 6.0;
  c.low_band_daily_mean = 1.5;
  c.num_suspicious_sellers = 5;
  c.seed = 404;
  return c;
}

TEST(AmazonTraceTest, GeneratesRatingsWithinDomains) {
  const AmazonTrace trace = generate_amazon_trace(small_config());
  EXPECT_GT(trace.ratings.size(), 1000u);
  for (const MarketplaceRating& r : trace.ratings) {
    EXPECT_GE(r.stars, 1);
    EXPECT_LE(r.stars, 5);
    EXPECT_LT(r.day, 120);
    EXPECT_LT(r.ratee, 30u);   // only sellers are rated in Amazon mode
    EXPECT_GE(r.rater, 30u);   // raters are buyers/partners/rivals
  }
}

TEST(AmazonTraceTest, DeterministicForSeed) {
  const AmazonTrace a = generate_amazon_trace(small_config());
  const AmazonTrace b = generate_amazon_trace(small_config());
  ASSERT_EQ(a.ratings.size(), b.ratings.size());
  EXPECT_TRUE(std::equal(
      a.ratings.begin(), a.ratings.end(), b.ratings.begin(),
      [](const MarketplaceRating& x, const MarketplaceRating& y) {
        return x.rater == y.rater && x.ratee == y.ratee &&
               x.stars == y.stars && x.day == y.day;
      }));
}

TEST(AmazonTraceTest, TruthListsSuspiciousSellersWithPartners) {
  const AmazonTrace trace = generate_amazon_trace(small_config());
  EXPECT_EQ(trace.truth.suspicious_sellers.size(), 5u);
  EXPECT_GE(trace.truth.collusion_pairs.size(),
            5u * small_config().partners_min);
  for (const auto& [partner, seller] : trace.truth.collusion_pairs) {
    EXPECT_TRUE(std::find(trace.truth.suspicious_sellers.begin(),
                          trace.truth.suspicious_sellers.end(),
                          seller) != trace.truth.suspicious_sellers.end());
    EXPECT_GE(partner, static_cast<UserId>(small_config().num_sellers +
                                           small_config().num_buyers));
  }
}

TEST(AmazonTraceTest, PartnersRateFrequentlyAndTopScore) {
  const AmazonTrace trace = generate_amazon_trace(small_config());
  // C4: injected partner pairs dominate the frequent-pair filter at a
  // threshold scaled to the trace duration (20/yr ~ 7 per 120 days).
  const auto pairs = frequent_pairs(trace.ratings, 7);
  ASSERT_FALSE(pairs.empty());
  std::size_t matched = 0;
  for (const auto& [partner, seller] : trace.truth.collusion_pairs) {
    for (const PairCount& pc : pairs) {
      if (pc.rater == partner && pc.ratee == seller) {
        ++matched;
        EXPECT_GT(pc.positive, pc.count * 9 / 10);  // 5-star campaigns
        break;
      }
    }
  }
  // Poisson(20..55 per year * 120/365) leaves almost every partner above
  // the scaled threshold.
  EXPECT_GE(matched, trace.truth.collusion_pairs.size() * 7 / 10);
}

TEST(AmazonTraceTest, RivalsRateOne) {
  AmazonTraceConfig c = small_config();
  c.rival_prob = 1.0;  // force rivals for determinism of the property
  const AmazonTrace trace = generate_amazon_trace(c);
  EXPECT_EQ(trace.truth.rival_pairs.size(), 5u);
  for (const auto& [rival, seller] : trace.truth.rival_pairs) {
    for (const MarketplaceRating& r : trace.ratings) {
      if (r.rater == rival) {
        EXPECT_EQ(r.ratee, seller);
        EXPECT_EQ(r.stars, 1);
      }
    }
  }
}

TEST(AmazonTraceTest, ReputationBandsEmerge) {
  const AmazonTrace trace = generate_amazon_trace(small_config());
  const auto profiles = seller_profiles(trace.ratings, trace.num_sellers);
  // High-band sellers (first ~45%) display >= 0.9; low-band sellers (last
  // 20%) display <= 0.85.
  const auto n = trace.num_sellers;
  double high_avg = 0.0;
  for (std::size_t s = 0; s < 10; ++s) high_avg += profiles[s].reputation;
  high_avg /= 10.0;
  double low_avg = 0.0;
  for (std::size_t s = n - 6; s < n; ++s) low_avg += profiles[s].reputation;
  low_avg /= 6.0;
  EXPECT_GT(high_avg, 0.90);
  EXPECT_LT(low_avg, 0.85);
  EXPECT_GT(high_avg, low_avg + 0.1);
}

TEST(AmazonTraceTest, HigherReputationAttractsMoreTransactions) {
  // Fig. 1(a)'s headline: high-reputed sellers transact more.
  const AmazonTrace trace = generate_amazon_trace(small_config());
  const auto profiles = seller_profiles(trace.ratings, trace.num_sellers);
  std::uint64_t high_total = 0;
  std::uint64_t low_total = 0;
  for (std::size_t s = 0; s < 10; ++s) high_total += profiles[s].total();
  for (std::size_t s = trace.num_sellers - 6; s < trace.num_sellers; ++s)
    low_total += profiles[s].total();
  EXPECT_GT(high_total / 10, low_total / 6 * 2);
}

TEST(AmazonTraceTest, NormalPairRateStaysNearOnePerYear) {
  // The paper: "the average number of transactions of a seller-buyer pair
  // is 1 per year". Organic pairs (excluding injected campaigns) must stay
  // well under the suspicious threshold.
  AmazonTraceConfig c = small_config();
  c.num_suspicious_sellers = 0;  // organic only
  const AmazonTrace trace = generate_amazon_trace(c);
  const auto pairs = frequent_pairs(trace.ratings, 7);
  EXPECT_TRUE(pairs.empty());
}

}  // namespace
}  // namespace p2prep::trace
