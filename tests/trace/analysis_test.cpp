#include "trace/analysis.h"

#include <gtest/gtest.h>

namespace p2prep::trace {
namespace {

MarketplaceRating make(UserId rater, UserId ratee, std::int8_t stars,
                       std::uint16_t day = 0) {
  return {rater, ratee, stars, day};
}

TEST(SellerProfilesTest, ClassifiesStars) {
  Trace trace{make(10, 0, 5), make(11, 0, 4), make(12, 0, 3),
              make(13, 0, 2), make(14, 0, 1)};
  const auto profiles = seller_profiles(trace, 2);
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[0].positives, 2u);
  EXPECT_EQ(profiles[0].negatives, 2u);
  EXPECT_EQ(profiles[0].neutrals, 1u);
  EXPECT_EQ(profiles[0].total(), 5u);
  EXPECT_DOUBLE_EQ(profiles[0].reputation, 0.5);
  // Unrated seller 1: zero reputation, zero counts.
  EXPECT_EQ(profiles[1].total(), 0u);
  EXPECT_DOUBLE_EQ(profiles[1].reputation, 0.0);
}

TEST(SellerProfilesTest, IgnoresRateesOutsideRange) {
  Trace trace{make(10, 5, 5)};
  const auto profiles = seller_profiles(trace, 2);
  EXPECT_EQ(profiles[0].total(), 0u);
  EXPECT_EQ(profiles[1].total(), 0u);
}

TEST(FrequentPairsTest, ThresholdAndOrdering) {
  Trace trace;
  for (int k = 0; k < 25; ++k) trace.push_back(make(1, 0, 5));
  for (int k = 0; k < 30; ++k) trace.push_back(make(2, 0, 1));
  for (int k = 0; k < 5; ++k) trace.push_back(make(3, 0, 5));
  const auto pairs = frequent_pairs(trace, 20);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].rater, 2u);  // descending count: 30 first
  EXPECT_EQ(pairs[0].count, 30u);
  EXPECT_EQ(pairs[0].negative, 30u);
  EXPECT_EQ(pairs[1].rater, 1u);
  EXPECT_EQ(pairs[1].positive, 25u);
}

TEST(FrequentPairsTest, DirectionsCountedSeparately) {
  Trace trace;
  for (int k = 0; k < 15; ++k) trace.push_back(make(1, 2, 5));
  for (int k = 0; k < 15; ++k) trace.push_back(make(2, 1, 5));
  // Neither direction alone reaches 20.
  EXPECT_TRUE(frequent_pairs(trace, 20).empty());
  EXPECT_EQ(frequent_pairs(trace, 15).size(), 2u);
}

TEST(FindSuspiciousTest, CollectsSellersAndRaters) {
  Trace trace;
  for (int k = 0; k < 25; ++k) trace.push_back(make(1, 0, 5));
  for (int k = 0; k < 25; ++k) trace.push_back(make(2, 0, 5));
  for (int k = 0; k < 25; ++k) trace.push_back(make(3, 4, 5));
  const auto summary = find_suspicious(trace, 20);
  EXPECT_EQ(summary.sellers, (std::vector<UserId>{0, 4}));
  EXPECT_EQ(summary.raters, (std::vector<UserId>{1, 2, 3}));
  EXPECT_EQ(summary.pairs.size(), 3u);
}

TEST(RatingTimelineTest, ChronologicalAndFiltered) {
  Trace trace{make(1, 0, 5, 30), make(1, 0, 4, 10), make(2, 0, 1, 5),
              make(1, 3, 2, 1)};
  const auto timeline = rating_timeline(trace, 1, 0);
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline[0].day, 10);
  EXPECT_EQ(timeline[0].stars, 4);
  EXPECT_EQ(timeline[1].day, 30);
  EXPECT_EQ(timeline[1].stars, 5);
}

TEST(RaterDailyStatsTest, ComputesPerDayExtremes) {
  Trace trace;
  // Rater 1: 3 ratings on day 0, 1 on day 5.
  trace.push_back(make(1, 0, 5, 0));
  trace.push_back(make(1, 0, 5, 0));
  trace.push_back(make(1, 0, 5, 0));
  trace.push_back(make(1, 0, 5, 5));
  // Rater 2: 1 rating.
  trace.push_back(make(2, 0, 1, 3));
  const auto stats = rater_daily_stats(trace, 0, 10);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].rater, 1u);  // more total ratings first
  EXPECT_EQ(stats[0].total, 4u);
  EXPECT_DOUBLE_EQ(stats[0].avg_per_day, 0.4);
  EXPECT_EQ(stats[0].max_per_day, 3u);
  EXPECT_EQ(stats[0].min_per_day, 1u);
  EXPECT_EQ(stats[1].total, 1u);
}

TEST(InteractionGraphTest, EdgesAndDegrees) {
  InteractionGraph g;
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(1, 2);  // duplicate ignored
  g.add_edge(4, 4);  // self-loop ignored
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(1, 3));
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(InteractionGraphTest, ComponentsSortedAndComplete) {
  InteractionGraph g;
  g.add_edge(5, 6);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto comps = g.components();
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0], (std::vector<UserId>{1, 2, 3}));
  EXPECT_EQ(comps[1], (std::vector<UserId>{5, 6}));
  const auto hist = g.component_size_histogram();
  EXPECT_EQ(hist.at(2), 1u);
  EXPECT_EQ(hist.at(3), 1u);
}

TEST(InteractionGraphTest, TriangleDetection) {
  InteractionGraph path;
  path.add_edge(1, 2);
  path.add_edge(2, 3);
  EXPECT_EQ(path.triangle_count(), 0u);
  EXPECT_TRUE(path.pairwise_only());

  InteractionGraph tri = path;
  tri.add_edge(1, 3);
  EXPECT_EQ(tri.triangle_count(), 1u);
  EXPECT_FALSE(tri.pairwise_only());
}

TEST(BuildInteractionGraphTest, SumsBothDirectionsAndThresholds) {
  Trace trace;
  // 12 each way = 24 between 1 and 2: above a 20 threshold.
  for (int k = 0; k < 12; ++k) {
    trace.push_back(make(1, 2, 5));
    trace.push_back(make(2, 1, 5));
  }
  // 20 between 3 and 4: NOT above (strictly greater required).
  for (int k = 0; k < 20; ++k) trace.push_back(make(3, 4, 5));
  const auto graph = build_interaction_graph(trace, 20);
  EXPECT_TRUE(graph.has_edge(1, 2));
  EXPECT_FALSE(graph.has_edge(3, 4));
  EXPECT_EQ(graph.edge_count(), 1u);
}

TEST(InteractionGraphTest, EmptyGraphBehaves) {
  InteractionGraph g;
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
  EXPECT_TRUE(g.components().empty());
  EXPECT_TRUE(g.pairwise_only());
  EXPECT_TRUE(g.neighbors(7).empty());
}


TEST(ClassifyRatersTest, PatternsRecognized) {
  Trace trace;
  // Partner: 20x five stars. Rival: 18x one star. Normal frequent: mixed.
  for (int k = 0; k < 20; ++k) trace.push_back(make(1, 0, 5, 0));
  for (int k = 0; k < 18; ++k) trace.push_back(make(2, 0, 1, 0));
  for (int k = 0; k < 16; ++k)
    trace.push_back(make(3, 0, k % 2 == 0 ? 5 : 2, 0));
  trace.push_back(make(4, 0, 5, 0));  // one-off buyer

  const auto classes = classify_raters(trace, 0);
  ASSERT_EQ(classes.size(), 4u);
  auto find = [&](UserId rater) -> const RaterClassification& {
    for (const auto& c : classes) {
      if (c.rater == rater) return c;
    }
    static RaterClassification none;
    return none;
  };
  EXPECT_EQ(find(1).pattern, RaterPattern::kPartner);
  EXPECT_EQ(find(2).pattern, RaterPattern::kRival);
  EXPECT_EQ(find(3).pattern, RaterPattern::kNormal);
  EXPECT_EQ(find(4).pattern, RaterPattern::kInfrequent);
  EXPECT_DOUBLE_EQ(find(1).positive_fraction, 1.0);
  EXPECT_DOUBLE_EQ(find(2).negative_fraction, 1.0);
  // Ordered by descending count.
  EXPECT_EQ(classes.front().rater, 1u);
}

TEST(ClassifyRatersTest, ExtremeFractionTolerance) {
  Trace trace;
  // 19 fives + 1 two: 95% positive passes the default threshold.
  for (int k = 0; k < 19; ++k) trace.push_back(make(1, 0, 5, 0));
  trace.push_back(make(1, 0, 2, 0));
  const auto classes = classify_raters(trace, 0);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].pattern, RaterPattern::kPartner);

  // Tightening the threshold demotes it to normal.
  const auto strict = classify_raters(trace, 0, 15, 0.99);
  EXPECT_EQ(strict[0].pattern, RaterPattern::kNormal);
}

TEST(ClassifyRatersTest, ToStringCoversAll) {
  EXPECT_STREQ(to_string(RaterPattern::kPartner), "partner");
  EXPECT_STREQ(to_string(RaterPattern::kRival), "rival");
  EXPECT_STREQ(to_string(RaterPattern::kNormal), "normal");
  EXPECT_STREQ(to_string(RaterPattern::kInfrequent), "infrequent");
}

}  // namespace
}  // namespace p2prep::trace
