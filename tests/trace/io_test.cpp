#include "trace/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/amazon.h"

namespace p2prep::trace {
namespace {

TEST(TraceIoTest, TraceRoundTrips) {
  Trace trace{{10, 0, 5, 3}, {11, 0, 1, 4}, {12, 1, 3, 100}};
  std::stringstream ss;
  write_trace_csv(ss, trace);
  const auto parsed = read_trace_csv(ss);
  ASSERT_TRUE(parsed.ok()) << parsed.error.message;
  ASSERT_EQ(parsed.value->size(), 3u);
  EXPECT_EQ((*parsed.value)[0].rater, 10u);
  EXPECT_EQ((*parsed.value)[1].stars, 1);
  EXPECT_EQ((*parsed.value)[2].day, 100);
}

TEST(TraceIoTest, GeneratedTraceRoundTrips) {
  AmazonTraceConfig config;
  config.num_sellers = 10;
  config.num_buyers = 200;
  config.days = 30;
  config.num_suspicious_sellers = 2;
  config.high_band_daily_mean = 3.0;
  config.medium_band_daily_mean = 2.0;
  config.low_band_daily_mean = 1.0;
  const AmazonTrace tr = generate_amazon_trace(config);
  std::stringstream ss;
  write_trace_csv(ss, tr.ratings);
  const auto parsed = read_trace_csv(ss);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value->size(), tr.ratings.size());
  for (std::size_t i = 0; i < tr.ratings.size(); i += 97) {
    EXPECT_EQ((*parsed.value)[i].rater, tr.ratings[i].rater);
    EXPECT_EQ((*parsed.value)[i].stars, tr.ratings[i].stars);
  }
}

TEST(TraceIoTest, EmptyInputRejected) {
  std::stringstream ss;
  const auto parsed = read_trace_csv(ss);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error.line, 0u);
}

TEST(TraceIoTest, BadHeaderRejected) {
  std::stringstream ss("a,b,c,d\n1,2,3,4\n");
  const auto parsed = read_trace_csv(ss);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error.line, 1u);
}

TEST(TraceIoTest, MalformedLineReportsNumber) {
  std::stringstream ss("rater,ratee,stars,day\n1,2,5,0\n1,2\n");
  const auto parsed = read_trace_csv(ss);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error.line, 3u);
  EXPECT_NE(parsed.error.message.find("4 fields"), std::string::npos);
}

TEST(TraceIoTest, NonNumericRejected) {
  std::stringstream ss("rater,ratee,stars,day\n1,x,5,0\n");
  EXPECT_FALSE(read_trace_csv(ss).ok());
}

TEST(TraceIoTest, StarsOutOfRangeRejected) {
  std::stringstream ss("rater,ratee,stars,day\n1,2,6,0\n");
  const auto parsed = read_trace_csv(ss);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.message.find("stars"), std::string::npos);
}

TEST(TraceIoTest, BlankLinesSkipped) {
  std::stringstream ss("rater,ratee,stars,day\n1,2,5,0\n\n3,4,1,2\n");
  const auto parsed = read_trace_csv(ss);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value->size(), 2u);
}

TEST(RatingsIoTest, RoundTrips) {
  std::vector<rating::Rating> ratings{
      {0, 1, rating::Score::kPositive, 5},
      {2, 3, rating::Score::kNegative, 6},
      {4, 5, rating::Score::kNeutral, 7},
  };
  std::stringstream ss;
  write_ratings_csv(ss, ratings);
  const auto parsed = read_ratings_csv(ss);
  ASSERT_TRUE(parsed.ok()) << parsed.error.message;
  EXPECT_EQ(*parsed.value, ratings);
}

TEST(RatingsIoTest, ScoreOutOfRangeRejected) {
  std::stringstream ss("rater,ratee,score,time\n1,2,2,0\n");
  EXPECT_FALSE(read_ratings_csv(ss).ok());
}

TEST(ToRatingsTest, AppliesAmazonMapping) {
  const Trace trace{{1, 0, 5, 2}, {1, 0, 3, 3}, {1, 0, 2, 4}};
  const auto ratings = to_ratings(trace);
  ASSERT_EQ(ratings.size(), 3u);
  EXPECT_EQ(ratings[0].score, rating::Score::kPositive);
  EXPECT_EQ(ratings[1].score, rating::Score::kNeutral);
  EXPECT_EQ(ratings[2].score, rating::Score::kNegative);
  EXPECT_EQ(ratings[0].time, 2u);
}

}  // namespace
}  // namespace p2prep::trace
