#include "trace/overstock.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "trace/analysis.h"

namespace p2prep::trace {
namespace {

OverstockTraceConfig small_config() {
  OverstockTraceConfig c;
  c.num_users = 5000;
  c.num_transactions = 20000;
  c.days = 365;
  c.num_collusion_pairs = 12;
  c.seed = 31337;
  return c;
}

TEST(OverstockTraceTest, GeneratesBidirectionalRatings) {
  const OverstockTrace trace = generate_overstock_trace(small_config());
  EXPECT_GT(trace.ratings.size(), 20000u);
  std::set<UserId> raters;
  std::set<UserId> ratees;
  for (const MarketplaceRating& r : trace.ratings) {
    EXPECT_LT(r.rater, 5000u);
    EXPECT_LT(r.ratee, 5000u);
    EXPECT_NE(r.rater, r.ratee);
    raters.insert(r.rater);
    ratees.insert(r.ratee);
  }
  // Users appear on both sides (buyer and seller roles).
  EXPECT_GT(raters.size(), 1000u);
  EXPECT_GT(ratees.size(), 1000u);
}

TEST(OverstockTraceTest, DeterministicForSeed) {
  const OverstockTrace a = generate_overstock_trace(small_config());
  const OverstockTrace b = generate_overstock_trace(small_config());
  ASSERT_EQ(a.ratings.size(), b.ratings.size());
  EXPECT_EQ(a.truth.collusion_pairs, b.truth.collusion_pairs);
}

TEST(OverstockTraceTest, InjectedPairsExceedEdgeThreshold) {
  const OverstockTrace trace = generate_overstock_trace(small_config());
  std::map<std::pair<UserId, UserId>, std::size_t> counts;
  for (const MarketplaceRating& r : trace.ratings) {
    const auto key = std::minmax(r.rater, r.ratee);
    ++counts[{key.first, key.second}];
  }
  for (const auto& [a, b] : trace.truth.collusion_pairs) {
    const auto key = std::minmax(a, b);
    const std::size_t count = counts[{key.first, key.second}];
    EXPECT_GT(count, 20u) << "pair " << a << "," << b;
  }
}

TEST(OverstockTraceTest, CollusionStructureIsPairwise) {
  // C5: a colluder may appear in two pairs (chains), but two already
  // colluding users are never joined, so no triangles exist in the truth.
  const OverstockTrace trace = generate_overstock_trace(small_config());
  std::map<UserId, std::set<UserId>> adj;
  for (const auto& [a, b] : trace.truth.collusion_pairs) {
    adj[a].insert(b);
    adj[b].insert(a);
  }
  for (const auto& [u, nbrs] : adj) {
    for (UserId v : nbrs) {
      for (UserId w : nbrs) {
        if (v < w) EXPECT_FALSE(adj[v].contains(w))
            << "triangle " << u << "," << v << "," << w;
      }
    }
  }
}

TEST(OverstockTraceTest, ChainedColludersExist) {
  OverstockTraceConfig c = small_config();
  c.num_collusion_pairs = 40;
  c.chained_colluder_fraction = 0.5;
  const OverstockTrace trace = generate_overstock_trace(c);
  std::map<UserId, std::size_t> degree;
  for (const auto& [a, b] : trace.truth.collusion_pairs) {
    ++degree[a];
    ++degree[b];
  }
  std::size_t chained = 0;
  for (const auto& [u, d] : degree) {
    EXPECT_LE(d, 2u);  // pairwise chains only
    if (d == 2) ++chained;
  }
  EXPECT_GT(chained, 0u);
}

TEST(OverstockTraceTest, InteractionGraphRecoversTruth) {
  // The Fig. 1(d) pipeline end to end on the synthetic trace: the >20
  // ratings graph contains exactly the injected pairs and is triangle-free.
  const OverstockTrace trace = generate_overstock_trace(small_config());
  const InteractionGraph graph = build_interaction_graph(trace.ratings, 20);
  EXPECT_EQ(graph.edge_count(), trace.truth.collusion_pairs.size());
  for (const auto& [a, b] : trace.truth.collusion_pairs)
    EXPECT_TRUE(graph.has_edge(a, b));
  EXPECT_TRUE(graph.pairwise_only());
}

TEST(OverstockTraceTest, SuspiciousUsersAreDeduplicated) {
  const OverstockTrace trace = generate_overstock_trace(small_config());
  const auto& s = trace.truth.suspicious_sellers;
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  EXPECT_EQ(std::adjacent_find(s.begin(), s.end()), s.end());
}

}  // namespace
}  // namespace p2prep::trace
