#include "reputation/gossiptrust.h"

#include <gtest/gtest.h>

#include <numeric>

#include "reputation/eigentrust.h"
#include "util/rng.h"

namespace p2prep::reputation {
namespace {

using rating::Rating;
using rating::Score;

Rating make(rating::NodeId rater, rating::NodeId ratee, Score s) {
  return {.rater = rater, .ratee = ratee, .score = s, .time = 0};
}

void feed(ReputationEngine& e, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  for (std::size_t k = 0; k < n * 20; ++k) {
    auto i = static_cast<rating::NodeId>(rng.next_below(n));
    auto j = static_cast<rating::NodeId>(rng.next_below(n));
    if (i == j) j = static_cast<rating::NodeId>((j + 1) % n);
    e.ingest(make(i, j,
                  rng.chance(0.8) ? Score::kPositive : Score::kNegative));
  }
}

TEST(GossipTrustTest, PublishesDistribution) {
  GossipTrustEngine e(30);
  e.set_pretrusted({0, 1});
  feed(e, 30, 7);
  e.update_epoch();
  const auto reps = e.reputations();
  const double sum = std::accumulate(reps.begin(), reps.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (double r : reps) EXPECT_GE(r, 0.0);
}

TEST(GossipTrustTest, ApproximatesEigenTrustRanking) {
  // Gossip aggregation must reproduce the centrally-computed EigenTrust
  // ordering for clearly separated nodes.
  constexpr std::size_t kN = 40;
  GossipTrustEngine gossip(kN, {.power_iterations = 12, .gossip_rounds = 80});
  EigenTrustEngine central(kN, {.alpha = 0.15});
  gossip.set_pretrusted({0});
  central.set_pretrusted({0});

  // Node 1 is widely praised, node 2 widely panned. The pretrusted node
  // must vouch for someone or EigenTrust's stationary vector collapses
  // onto it (its restart row is the only source of trust mass).
  for (int k = 0; k < 5; ++k) {
    gossip.ingest(make(0, 1, Score::kPositive));
    central.ingest(make(0, 1, Score::kPositive));
  }
  for (rating::NodeId v = 3; v < kN; ++v) {
    for (int k = 0; k < 5; ++k) {
      gossip.ingest(make(v, 1, Score::kPositive));
      central.ingest(make(v, 1, Score::kPositive));
      gossip.ingest(make(v, 2, Score::kNegative));
      central.ingest(make(v, 2, Score::kNegative));
    }
  }
  gossip.update_epoch();
  central.update_epoch();

  EXPECT_GT(gossip.reputation(1), gossip.reputation(2));
  EXPECT_GT(central.reputation(1), central.reputation(2));
  // Values agree within gossip residual error.
  EXPECT_NEAR(gossip.reputation(1), central.reputation(1), 0.08);
}

TEST(GossipTrustTest, MoreRoundsReduceErrorVsCentral) {
  constexpr std::size_t kN = 30;
  auto error_with_rounds = [&](std::size_t rounds) {
    GossipTrustEngine gossip(
        kN, {.power_iterations = 8, .gossip_rounds = rounds, .seed = 5});
    EigenTrustEngine central(kN);
    gossip.set_pretrusted({0});
    central.set_pretrusted({0});
    feed(gossip, kN, 11);
    feed(central, kN, 11);
    gossip.update_epoch();
    central.update_epoch();
    double err = 0.0;
    for (rating::NodeId i = 0; i < kN; ++i)
      err += std::abs(gossip.reputation(i) - central.reputation(i));
    return err;
  };
  const double coarse = error_with_rounds(6);
  const double fine = error_with_rounds(60);
  EXPECT_LT(fine, coarse);
  EXPECT_LT(fine, 0.1);
}

TEST(GossipTrustTest, CountsGossipMessages) {
  GossipTrustEngine e(20, {.power_iterations = 2, .gossip_rounds = 10});
  feed(e, 20, 3);
  EXPECT_EQ(e.gossip_messages(), 0u);
  e.update_epoch();
  // 2 iterations * 20 components * 10 rounds * 20 nodes.
  EXPECT_EQ(e.gossip_messages(), 2u * 20u * 10u * 20u);
  EXPECT_GE(e.cost().messages, e.gossip_messages());
}

TEST(GossipTrustTest, DeterministicForSeed) {
  auto run = [] {
    GossipTrustEngine e(15, {.seed = 77});
    e.set_pretrusted({0});
    feed(e, 15, 9);
    e.update_epoch();
    return std::vector<double>(e.reputations().begin(),
                               e.reputations().end());
  };
  EXPECT_EQ(run(), run());
}

TEST(GossipTrustTest, SuppressZeroes) {
  GossipTrustEngine e(10);
  feed(e, 10, 1);
  e.suppress(3);
  e.update_epoch();
  EXPECT_DOUBLE_EQ(e.reputation(3), 0.0);
}

}  // namespace
}  // namespace p2prep::reputation
