#include "reputation/trustguard.h"

#include <gtest/gtest.h>

namespace p2prep::reputation {
namespace {

using rating::Rating;
using rating::Score;

Rating make(rating::NodeId rater, rating::NodeId ratee, Score s) {
  return {.rater = rater, .ratee = ratee, .score = s, .time = 0};
}

void rate_window(TrustGuardEngine& e, rating::NodeId node,
                 int positives, int negatives) {
  for (int k = 0; k < positives; ++k)
    e.ingest(make(static_cast<rating::NodeId>(100 + k), node,
                  Score::kPositive));
  for (int k = 0; k < negatives; ++k)
    e.ingest(make(static_cast<rating::NodeId>(200 + k), node,
                  Score::kNegative));
  e.update_epoch();
}

TEST(TrustGuardTest, UnratedStaysAtPrior) {
  TrustGuardEngine e(4, {.prior = 0.1});
  e.update_epoch();
  EXPECT_DOUBLE_EQ(e.reputation(0), 0.1);
  EXPECT_EQ(e.history_depth(0), 1u);
}

TEST(TrustGuardTest, ConsistentlyGoodNodeScoresHigh) {
  TrustGuardEngine e(300);
  for (int w = 0; w < 6; ++w) rate_window(e, 0, 10, 0);
  // current = history = 1.0, fluctuation 0: R = w_cur + w_hist = 1.0.
  EXPECT_DOUBLE_EQ(e.reputation(0), 1.0);
  EXPECT_DOUBLE_EQ(e.last_window_score(0), 1.0);
}

TEST(TrustGuardTest, ConsistentlyBadNodeScoresZero) {
  TrustGuardEngine e(300);
  for (int w = 0; w < 6; ++w) rate_window(e, 0, 0, 10);
  EXPECT_DOUBLE_EQ(e.reputation(0), 0.0);
}

TEST(TrustGuardTest, DefectionDropsTrustImmediately) {
  TrustGuardEngine e(300);
  for (int w = 0; w < 6; ++w) rate_window(e, 0, 10, 0);
  const double before = e.reputation(0);
  rate_window(e, 0, 0, 10);  // traitor defects
  const double after = e.reputation(0);
  EXPECT_LT(after, before * 0.7);
  // Current term is 0, history ~1, fluctuation penalty bites:
  // R <= 0 + 0.5*1 - penalty < 0.5.
  EXPECT_LT(after, 0.5);
}

TEST(TrustGuardTest, FluctuationPenalizedVsSteadyMediocrity) {
  TrustGuardEngine e(300);
  // Node 0 oscillates between perfect and awful; node 1 is steady 50%.
  for (int w = 0; w < 8; ++w) {
    if (w % 2 == 0) {
      rate_window(e, 0, 10, 0);
    } else {
      rate_window(e, 0, 0, 10);
    }
  }
  TrustGuardEngine steady(300);
  for (int w = 0; w < 8; ++w) rate_window(steady, 1, 5, 5);
  // Same long-run service quality, but the oscillator pays the
  // fluctuation penalty.
  EXPECT_LT(e.reputation(0), steady.reputation(1));
}

TEST(TrustGuardTest, HistoryWindowBounded) {
  TrustGuardEngine e(300, {.history_windows = 3});
  for (int w = 0; w < 10; ++w) rate_window(e, 0, 10, 0);
  EXPECT_EQ(e.history_depth(0), 3u);
  // Ancient bad behaviour ages out entirely after H good windows.
  TrustGuardEngine aged(300, {.history_windows = 3});
  rate_window(aged, 0, 0, 10);
  for (int w = 0; w < 3; ++w) rate_window(aged, 0, 10, 0);
  EXPECT_DOUBLE_EQ(aged.reputation(0), 1.0);
}

TEST(TrustGuardTest, QuietWindowCarriesPreviousScore) {
  TrustGuardEngine e(300);
  rate_window(e, 0, 10, 0);
  e.update_epoch();  // nothing rated this window
  EXPECT_DOUBLE_EQ(e.last_window_score(0), 1.0);
  EXPECT_GT(e.reputation(0), 0.9);
}

TEST(TrustGuardTest, ResetClearsHistory) {
  TrustGuardEngine e(300);
  for (int w = 0; w < 4; ++w) rate_window(e, 0, 10, 0);
  e.reset_reputation(0);
  EXPECT_DOUBLE_EQ(e.reputation(0), 0.0);
  EXPECT_EQ(e.history_depth(0), 0u);
}

TEST(TrustGuardTest, SuppressPins) {
  TrustGuardEngine e(300);
  rate_window(e, 0, 10, 0);
  e.suppress(0);
  e.update_epoch();
  EXPECT_DOUBLE_EQ(e.reputation(0), 0.0);
}

}  // namespace
}  // namespace p2prep::reputation
