#include "reputation/ratio.h"

#include <gtest/gtest.h>

namespace p2prep::reputation {
namespace {

using rating::Rating;
using rating::Score;

Rating make(rating::NodeId rater, rating::NodeId ratee, Score s) {
  return {.rater = rater, .ratee = ratee, .score = s, .time = 0};
}

TEST(RatioEngineTest, UnratedNodesGetPrior) {
  RatioEngine e(3);
  e.update_epoch();
  EXPECT_DOUBLE_EQ(e.reputation(0), 0.5);
}

TEST(RatioEngineTest, AmazonRatioExcludesNeutrals) {
  RatioEngine e(2);
  for (int i = 0; i < 3; ++i) e.ingest(make(0, 1, Score::kPositive));
  e.ingest(make(0, 1, Score::kNegative));
  for (int i = 0; i < 10; ++i) e.ingest(make(0, 1, Score::kNeutral));
  e.update_epoch();
  EXPECT_DOUBLE_EQ(e.reputation(1), 0.75);
}

TEST(RatioEngineTest, AllPositiveIsOne) {
  RatioEngine e(2);
  for (int i = 0; i < 5; ++i) e.ingest(make(0, 1, Score::kPositive));
  e.update_epoch();
  EXPECT_DOUBLE_EQ(e.reputation(1), 1.0);
}

TEST(RatioEngineTest, AllNegativeIsZero) {
  RatioEngine e(2);
  for (int i = 0; i < 5; ++i) e.ingest(make(0, 1, Score::kNegative));
  e.update_epoch();
  EXPECT_DOUBLE_EQ(e.reputation(1), 0.0);
}

TEST(RatioEngineTest, AggregateExposesCounts) {
  RatioEngine e(2);
  e.ingest(make(0, 1, Score::kPositive));
  e.ingest(make(0, 1, Score::kNegative));
  e.ingest(make(0, 1, Score::kNeutral));
  const auto& agg = e.aggregate(1);
  EXPECT_EQ(agg.total, 3u);
  EXPECT_EQ(agg.positive, 1u);
  EXPECT_EQ(agg.negative, 1u);
  EXPECT_EQ(agg.neutral(), 1u);
}

TEST(RatioEngineTest, SuppressZeroes) {
  RatioEngine e(2);
  for (int i = 0; i < 5; ++i) e.ingest(make(0, 1, Score::kPositive));
  e.suppress(1);
  e.update_epoch();
  EXPECT_DOUBLE_EQ(e.reputation(1), 0.0);
}

TEST(RatioEngineTest, IngestAutoGrows) {
  RatioEngine e;
  e.ingest(make(0, 7, Score::kPositive));
  EXPECT_GE(e.num_nodes(), 8u);
}

TEST(RatioEngineTest, PaperReputationBandsReproduce) {
  // A seller with 21958 positives and 2037 negatives displays ~0.915
  // (the paper's example suspicious seller).
  RatioEngine e(2);
  for (int i = 0; i < 21958; ++i) e.ingest(make(0, 1, Score::kPositive));
  for (int i = 0; i < 2037; ++i) e.ingest(make(0, 1, Score::kNegative));
  e.update_epoch();
  EXPECT_NEAR(e.reputation(1), 0.915, 0.001);
}

}  // namespace
}  // namespace p2prep::reputation
