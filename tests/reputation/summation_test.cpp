#include "reputation/summation.h"

#include <gtest/gtest.h>

namespace p2prep::reputation {
namespace {

using rating::Rating;
using rating::Score;

Rating make(rating::NodeId rater, rating::NodeId ratee, Score s) {
  return {.rater = rater, .ratee = ratee, .score = s, .time = 0};
}

TEST(SummationEngineTest, NameAndInitialState) {
  SummationEngine e(4);
  EXPECT_EQ(e.name(), "Summation");
  EXPECT_EQ(e.num_nodes(), 4u);
  e.update_epoch();
  for (rating::NodeId i = 0; i < 4; ++i) EXPECT_EQ(e.reputation(i), 0.0);
}

TEST(SummationEngineTest, RawSumTracksSignedRatings) {
  SummationEngine e(3);
  e.ingest(make(0, 1, Score::kPositive));
  e.ingest(make(0, 1, Score::kPositive));
  e.ingest(make(2, 1, Score::kNegative));
  e.ingest(make(2, 1, Score::kNeutral));
  EXPECT_EQ(e.raw_sum(1), 1);
  EXPECT_EQ(e.raw_sum(0), 0);
}

TEST(SummationEngineTest, NormalizedPublishesDistribution) {
  SummationEngine e(3);
  e.ingest(make(0, 1, Score::kPositive));
  e.ingest(make(0, 1, Score::kPositive));
  e.ingest(make(1, 2, Score::kPositive));
  e.update_epoch();
  EXPECT_DOUBLE_EQ(e.reputation(1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(e.reputation(2), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(e.reputation(0), 0.0);
  double sum = 0.0;
  for (double r : e.reputations()) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(SummationEngineTest, NegativeSumsClampToZeroBeforeNormalizing) {
  SummationEngine e(2);
  e.ingest(make(0, 1, Score::kNegative));
  e.ingest(make(1, 0, Score::kPositive));
  e.update_epoch();
  EXPECT_DOUBLE_EQ(e.reputation(1), 0.0);
  EXPECT_DOUBLE_EQ(e.reputation(0), 1.0);
}

TEST(SummationEngineTest, RawModePublishesSums) {
  SummationEngine e(2, /*normalize=*/false);
  e.ingest(make(0, 1, Score::kNegative));
  e.ingest(make(0, 1, Score::kNegative));
  e.update_epoch();
  EXPECT_DOUBLE_EQ(e.reputation(1), -2.0);
}

TEST(SummationEngineTest, SuppressPinsToZeroAcrossEpochs) {
  SummationEngine e(2);
  e.ingest(make(0, 1, Score::kPositive));
  e.update_epoch();
  EXPECT_GT(e.reputation(1), 0.0);
  e.suppress(1);
  e.update_epoch();
  EXPECT_EQ(e.reputation(1), 0.0);
  EXPECT_TRUE(e.is_suppressed(1));
  e.ingest(make(0, 1, Score::kPositive));
  e.update_epoch();
  EXPECT_EQ(e.reputation(1), 0.0);
}

TEST(SummationEngineTest, IngestAutoGrows) {
  SummationEngine e(1);
  e.ingest(make(0, 5, Score::kPositive));
  EXPECT_GE(e.num_nodes(), 6u);
  e.update_epoch();
  EXPECT_GT(e.reputation(5), 0.0);
}

TEST(SummationEngineTest, CostAccumulatesAndResets) {
  SummationEngine e(4);
  e.ingest(make(0, 1, Score::kPositive));
  e.update_epoch();
  EXPECT_GT(e.cost().total(), 0u);
  e.reset_cost();
  EXPECT_EQ(e.cost().total(), 0u);
}

TEST(SummationEngineTest, PretrustedBookkeeping) {
  SummationEngine e(4);
  e.set_pretrusted({0, 2});
  EXPECT_TRUE(e.is_pretrusted(0));
  EXPECT_FALSE(e.is_pretrusted(1));
  EXPECT_EQ(e.pretrusted_count(), 2u);
  e.set_pretrusted({3});
  EXPECT_FALSE(e.is_pretrusted(0));
  EXPECT_TRUE(e.is_pretrusted(3));
}

}  // namespace
}  // namespace p2prep::reputation
