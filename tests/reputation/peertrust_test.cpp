#include "reputation/peertrust.h"

#include <gtest/gtest.h>

namespace p2prep::reputation {
namespace {

using rating::Rating;
using rating::Score;

Rating make(rating::NodeId rater, rating::NodeId ratee, Score s) {
  return {.rater = rater, .ratee = ratee, .score = s, .time = 0};
}

TEST(PeerTrustTest, UnratedNodesKeepPrior) {
  PeerTrustEngine e(4, {.prior = 0.3});
  e.update_epoch();
  for (rating::NodeId i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(e.reputation(i), 0.3);
}

TEST(PeerTrustTest, UnanimousFeedbackGivesExtremeTrust) {
  PeerTrustEngine e(5);
  for (rating::NodeId v = 1; v < 5; ++v) {
    for (int k = 0; k < 5; ++k) e.ingest(make(v, 0, Score::kPositive));
  }
  e.update_epoch();
  EXPECT_DOUBLE_EQ(e.reputation(0), 1.0);
  // All raters agree with consensus: full credibility.
  for (rating::NodeId v = 1; v < 5; ++v)
    EXPECT_DOUBLE_EQ(e.credibility(v), 1.0);
}

TEST(PeerTrustTest, DissentingRaterLosesCredibility) {
  PeerTrustEngine e(6);
  // Raters 1-4 rate node 0 negative; rater 5 rates it positive.
  for (rating::NodeId v = 1; v < 5; ++v) {
    for (int k = 0; k < 10; ++k) e.ingest(make(v, 0, Score::kNegative));
  }
  for (int k = 0; k < 10; ++k) e.ingest(make(5, 0, Score::kPositive));
  e.update_epoch();
  EXPECT_LT(e.credibility(5), e.credibility(1));
  // The lone positive voice barely moves the trust value.
  EXPECT_LT(e.reputation(0), 0.3);
}

TEST(PeerTrustTest, CollusionDampedByCredibility) {
  // Colluders 0/1 rate each other positive; the community rates them
  // negative. Their mutual praise disagrees with consensus, so their
  // credibility (and thus their boost) drops.
  PeerTrustEngine e(12);
  for (int k = 0; k < 30; ++k) {
    e.ingest(make(0, 1, Score::kPositive));
    e.ingest(make(1, 0, Score::kPositive));
  }
  for (rating::NodeId v = 2; v < 12; ++v) {
    for (int k = 0; k < 5; ++k) {
      e.ingest(make(v, 0, Score::kNegative));
      e.ingest(make(v, 1, Score::kNegative));
      e.ingest(make(v, 2 + (v + 1) % 10, Score::kPositive));
    }
  }
  e.update_epoch();
  EXPECT_LT(e.credibility(0), 0.9);
  // Damped but NOT eliminated — the paper's point about why credibility
  // weighting alone is mitigation, not detection.
  EXPECT_GT(e.reputation(0), 0.0);
  EXPECT_LT(e.reputation(0), 0.6);
}

TEST(PeerTrustTest, CredibilityHasFloor) {
  PeerTrustEngine e(4, {.min_credibility = 0.2});
  // Rater 3 maximally disagrees everywhere.
  for (int k = 0; k < 10; ++k) {
    e.ingest(make(1, 0, Score::kNegative));
    e.ingest(make(2, 0, Score::kNegative));
    e.ingest(make(3, 0, Score::kPositive));
  }
  e.update_epoch();
  EXPECT_GE(e.credibility(3), 0.2);
}

TEST(PeerTrustTest, SuppressAndReset) {
  PeerTrustEngine e(4);
  for (int k = 0; k < 5; ++k) e.ingest(make(1, 0, Score::kPositive));
  e.update_epoch();
  EXPECT_GT(e.reputation(0), 0.0);

  e.reset_reputation(0);
  EXPECT_DOUBLE_EQ(e.reputation(0), 0.0);
  // Reset clears history: new ratings rebuild trust.
  for (int k = 0; k < 5; ++k) e.ingest(make(1, 0, Score::kPositive));
  e.update_epoch();
  EXPECT_GT(e.reputation(0), 0.0);

  e.suppress(0);
  e.update_epoch();
  EXPECT_DOUBLE_EQ(e.reputation(0), 0.0);
}

TEST(PeerTrustTest, IngestAutoGrows) {
  PeerTrustEngine e;
  e.ingest(make(0, 9, Score::kPositive));
  EXPECT_GE(e.num_nodes(), 10u);
}

}  // namespace
}  // namespace p2prep::reputation
