#include "reputation/weighted.h"

#include <gtest/gtest.h>

#include <numeric>

namespace p2prep::reputation {
namespace {

using rating::Rating;
using rating::Score;

Rating make(rating::NodeId rater, rating::NodeId ratee, Score s) {
  return {.rater = rater, .ratee = ratee, .score = s, .time = 0};
}

TEST(WeightedFeedbackTest, DefaultWeightsArePaperValues) {
  WeightedFeedbackEngine e(2);
  EXPECT_DOUBLE_EQ(e.config().normal_weight, 0.2);
  EXPECT_DOUBLE_EQ(e.config().pretrusted_weight, 0.5);
}

TEST(WeightedFeedbackTest, NormalRatingWeighted) {
  WeightedFeedbackEngine e(3);
  e.ingest(make(0, 1, Score::kPositive));
  EXPECT_DOUBLE_EQ(e.raw(1), 0.2);
  e.ingest(make(0, 1, Score::kNegative));
  EXPECT_DOUBLE_EQ(e.raw(1), 0.0);
}

TEST(WeightedFeedbackTest, PretrustedRatingWeightedHigher) {
  WeightedFeedbackEngine e(3);
  e.set_pretrusted({0});
  e.ingest(make(0, 1, Score::kPositive));
  e.ingest(make(2, 1, Score::kPositive));
  EXPECT_DOUBLE_EQ(e.raw(1), 0.7);  // 0.5 + 0.2
}

TEST(WeightedFeedbackTest, PublishedIsNormalizedDistribution) {
  WeightedFeedbackEngine e(3);
  e.ingest(make(0, 1, Score::kPositive));
  e.ingest(make(0, 2, Score::kPositive));
  e.ingest(make(1, 2, Score::kPositive));
  e.update_epoch();
  const auto reps = e.reputations();
  EXPECT_NEAR(std::accumulate(reps.begin(), reps.end(), 0.0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(e.reputation(2), 2.0 / 3.0);
}

TEST(WeightedFeedbackTest, NegativeRawClampsToZero) {
  WeightedFeedbackEngine e(2);
  e.ingest(make(0, 1, Score::kNegative));
  e.ingest(make(1, 0, Score::kPositive));
  e.update_epoch();
  EXPECT_DOUBLE_EQ(e.reputation(1), 0.0);
  EXPECT_DOUBLE_EQ(e.reputation(0), 1.0);
}

TEST(WeightedFeedbackTest, NeutralRatingDoesNotMoveRaw) {
  WeightedFeedbackEngine e(2);
  e.ingest(make(0, 1, Score::kNeutral));
  EXPECT_DOUBLE_EQ(e.raw(1), 0.0);
}

TEST(WeightedFeedbackTest, CustomWeights) {
  WeightedFeedbackEngine e(2, {.normal_weight = 1.0, .pretrusted_weight = 2.0});
  e.set_pretrusted({0});
  e.ingest(make(0, 1, Score::kPositive));
  EXPECT_DOUBLE_EQ(e.raw(1), 2.0);
}

TEST(WeightedFeedbackTest, SuppressPins) {
  WeightedFeedbackEngine e(2);
  e.ingest(make(0, 1, Score::kPositive));
  e.suppress(1);
  e.update_epoch();
  EXPECT_DOUBLE_EQ(e.reputation(1), 0.0);
  // New positive feedback cannot resurrect a suppressed node.
  e.ingest(make(0, 1, Score::kPositive));
  e.update_epoch();
  EXPECT_DOUBLE_EQ(e.reputation(1), 0.0);
}

TEST(WeightedFeedbackTest, AllZeroPublishesZeros) {
  WeightedFeedbackEngine e(3);
  e.update_epoch();
  for (rating::NodeId i = 0; i < 3; ++i) EXPECT_EQ(e.reputation(i), 0.0);
}

TEST(WeightedFeedbackTest, CollusionBoostOutweighsHonestService) {
  // Two colluders exchanging many positives beat a normal node with a
  // realistic service record — the paper's Fig. 5 mechanism in miniature.
  WeightedFeedbackEngine e(10);
  // Colluders 0 and 1 exchange 200 positives each.
  for (int k = 0; k < 200; ++k) {
    e.ingest(make(0, 1, Score::kPositive));
    e.ingest(make(1, 0, Score::kPositive));
  }
  // Normal node 2 serves 40 requests at 80% quality.
  for (int k = 0; k < 32; ++k) e.ingest(make(3, 2, Score::kPositive));
  for (int k = 0; k < 8; ++k) e.ingest(make(3, 2, Score::kNegative));
  e.update_epoch();
  EXPECT_GT(e.reputation(0), e.reputation(2));
  EXPECT_GT(e.reputation(1), e.reputation(2));
}

}  // namespace
}  // namespace p2prep::reputation
