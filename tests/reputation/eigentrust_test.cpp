#include "reputation/eigentrust.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace p2prep::reputation {
namespace {

using rating::Rating;
using rating::Score;

Rating make(rating::NodeId rater, rating::NodeId ratee, Score s) {
  return {.rater = rater, .ratee = ratee, .score = s, .time = 0};
}

double sum_of(std::span<const double> xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

TEST(EigenTrustTest, InitialTrustIsUniform) {
  EigenTrustEngine e(4);
  for (rating::NodeId i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(e.reputation(i), 0.25);
}

TEST(EigenTrustTest, TrustVectorIsDistribution) {
  EigenTrustEngine e(5);
  e.set_pretrusted({0});
  e.ingest(make(0, 1, Score::kPositive));
  e.ingest(make(1, 2, Score::kPositive));
  e.ingest(make(2, 3, Score::kPositive));
  e.update_epoch();
  EXPECT_NEAR(sum_of(e.reputations()), 1.0, 1e-9);
  for (double r : e.reputations()) EXPECT_GE(r, 0.0);
}

TEST(EigenTrustTest, WellRatedNodeOutranksUnrated) {
  EigenTrustEngine e(4);
  e.set_pretrusted({0});
  for (int i = 0; i < 10; ++i) {
    e.ingest(make(0, 1, Score::kPositive));
    e.ingest(make(2, 1, Score::kPositive));
    e.ingest(make(3, 1, Score::kPositive));
  }
  e.update_epoch();
  EXPECT_GT(e.reputation(1), e.reputation(3));
}

TEST(EigenTrustTest, NegativeExperienceIsClampedNotRewarded) {
  EigenTrustEngine e(3);
  e.set_pretrusted({0});
  for (int i = 0; i < 10; ++i) e.ingest(make(0, 1, Score::kPositive));
  for (int i = 0; i < 10; ++i) e.ingest(make(0, 2, Score::kNegative));
  e.update_epoch();
  EXPECT_GT(e.reputation(1), e.reputation(2));
  EXPECT_EQ(e.local_experience(0, 2), -10);
}

TEST(EigenTrustTest, PretrustedRestartKeepsPretrustedVisible) {
  EigenTrustEngine e(4, {.alpha = 0.3});
  e.set_pretrusted({0});
  for (int i = 0; i < 20; ++i) {
    e.ingest(make(1, 2, Score::kPositive));
    e.ingest(make(2, 1, Score::kPositive));
  }
  e.update_epoch();
  // Restart mass flows to node 0 every iteration.
  EXPECT_GT(e.reputation(0), 0.0);
}

TEST(EigenTrustTest, ConvergesWithinIterationCap) {
  EigenTrustEngine e(10);
  e.set_pretrusted({0, 1});
  for (rating::NodeId i = 0; i < 10; ++i)
    for (rating::NodeId j = 0; j < 10; ++j)
      if (i != j) e.ingest(make(i, j, Score::kPositive));
  e.update_epoch();
  EXPECT_GT(e.last_iterations(), 0u);
  EXPECT_LT(e.last_iterations(), e.config().max_iterations);
}

TEST(EigenTrustTest, DeterministicAcrossRuns) {
  auto run = [] {
    EigenTrustEngine e(6);
    e.set_pretrusted({0});
    for (int i = 0; i < 5; ++i) {
      e.ingest(make(0, 1, Score::kPositive));
      e.ingest(make(1, 2, Score::kPositive));
      e.ingest(make(3, 4, Score::kNegative));
    }
    e.update_epoch();
    return std::vector<double>(e.reputations().begin(),
                               e.reputations().end());
  };
  EXPECT_EQ(run(), run());
}

TEST(EigenTrustTest, ParallelMatchesSerial) {
  util::ThreadPool pool(4);
  auto run = [](util::ThreadPool* p) {
    EigenTrustEngine e(100, {}, p);
    e.set_pretrusted({0, 1, 2});
    util::Rng rng(99);
    for (int k = 0; k < 2000; ++k) {
      const auto i = static_cast<rating::NodeId>(rng.next_below(100));
      auto j = static_cast<rating::NodeId>(rng.next_below(100));
      if (j == i) j = (j + 1) % 100;
      e.ingest(make(i, j,
                    rng.chance(0.8) ? Score::kPositive : Score::kNegative));
    }
    e.update_epoch();
    return std::vector<double>(e.reputations().begin(),
                               e.reputations().end());
  };
  const auto serial = run(nullptr);
  const auto parallel = run(&pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_NEAR(serial[i], parallel[i], 1e-12);
}

TEST(EigenTrustTest, SuppressZeroesTrust) {
  EigenTrustEngine e(3);
  e.set_pretrusted({0});
  for (int i = 0; i < 5; ++i) e.ingest(make(0, 1, Score::kPositive));
  e.suppress(1);
  e.update_epoch();
  EXPECT_EQ(e.reputation(1), 0.0);
}

TEST(EigenTrustTest, CostGrowsQuadraticallyWithN) {
  EigenTrustEngine small(50);
  small.update_epoch();
  EigenTrustEngine big(100);
  big.update_epoch();
  // Same iteration structure; 2x nodes -> ~4x arithmetic.
  ASSERT_GT(small.cost().arithmetic, 0u);
  const double ratio = static_cast<double>(big.cost().arithmetic) /
                       static_cast<double>(small.cost().arithmetic);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 6.0);
}

TEST(EigenTrustTest, NoPretrustedFallsBackToUniformRestart) {
  EigenTrustEngine e(4);
  for (int i = 0; i < 5; ++i) e.ingest(make(0, 1, Score::kPositive));
  e.update_epoch();
  EXPECT_NEAR(sum_of(e.reputations()), 1.0, 1e-9);
  EXPECT_GT(e.reputation(1), e.reputation(3));
}

}  // namespace
}  // namespace p2prep::reputation
