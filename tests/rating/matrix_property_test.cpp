// Property: the incrementally-maintained RatingMatrix (add_rating with a
// frequency threshold) agrees with a from-scratch snapshot build on random
// rating streams — cells, totals, and the frequent-rater aggregates the
// Optimized detector's joint-complement test depends on.
#include <gtest/gtest.h>

#include "rating/matrix.h"
#include "rating/store.h"
#include "util/rng.h"

namespace p2prep::rating {
namespace {

class MatrixIncrementalTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MatrixIncrementalTest, IncrementalMatchesSnapshot) {
  constexpr std::size_t kNodes = 15;
  constexpr std::uint32_t kThreshold = 5;
  util::Rng rng(GetParam());

  RatingStore store(kNodes);
  RatingMatrix incremental(kNodes);
  incremental.set_frequency_threshold(kThreshold);

  for (int k = 0; k < 2000; ++k) {
    Rating r;
    r.rater = static_cast<NodeId>(rng.next_below(kNodes));
    r.ratee = static_cast<NodeId>(rng.next_below(kNodes));
    if (r.rater == r.ratee) continue;
    const double s = rng.next_double();
    r.score = s < 0.6 ? Score::kPositive
                      : (s < 0.9 ? Score::kNegative : Score::kNeutral);
    store.ingest(r);
    incremental.add_rating(r.ratee, r.rater, r.score);
  }

  std::vector<double> reps(kNodes, 0.1);
  const RatingMatrix snapshot =
      RatingMatrix::build(store, reps, 0.05, kThreshold);

  for (NodeId i = 0; i < kNodes; ++i) {
    EXPECT_EQ(incremental.totals(i), snapshot.totals(i)) << "row " << i;
    EXPECT_EQ(incremental.frequent_totals(i), snapshot.frequent_totals(i))
        << "row " << i;
    EXPECT_EQ(incremental.window_reputation(i), snapshot.window_reputation(i));
    for (NodeId j = 0; j < kNodes; ++j)
      EXPECT_EQ(incremental.cell(i, j), snapshot.cell(i, j))
          << i << "," << j;
  }
}

TEST_P(MatrixIncrementalTest, FrequentAggregateEqualsManualSum) {
  constexpr std::size_t kNodes = 12;
  constexpr std::uint32_t kThreshold = 4;
  util::Rng rng(GetParam() ^ 0x5a5a);

  RatingMatrix m(kNodes);
  m.set_frequency_threshold(kThreshold);
  for (int k = 0; k < 1500; ++k) {
    const auto rater = static_cast<NodeId>(rng.next_below(kNodes));
    auto ratee = static_cast<NodeId>(rng.next_below(kNodes));
    if (ratee == rater) ratee = static_cast<NodeId>((ratee + 1) % kNodes);
    m.add_rating(ratee, rater,
                 rng.chance(0.7) ? Score::kPositive : Score::kNegative);
  }

  for (NodeId i = 0; i < kNodes; ++i) {
    PairStats manual;
    for (NodeId j = 0; j < kNodes; ++j) {
      if (m.cell(i, j).total >= kThreshold) manual += m.cell(i, j);
    }
    EXPECT_EQ(m.frequent_totals(i), manual) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixIncrementalTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace p2prep::rating
