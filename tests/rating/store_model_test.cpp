// Model-based property test: RatingStore against a naive reference model
// over randomized operation sequences (ingest / reset_window /
// transfer_ratee), parameterized by seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "rating/matrix.h"
#include "rating/store.h"
#include "util/rng.h"

namespace p2prep::rating {
namespace {

/// The obviously-correct reference: plain maps, recomputed aggregates.
struct ModelStore {
  struct Cell {
    PairStats window;
    PairStats lifetime;
  };
  std::map<std::pair<NodeId, NodeId>, Cell> cells;  // (ratee, rater)

  void ingest(const Rating& r) {
    if (r.rater == r.ratee) return;
    auto& cell = cells[{r.ratee, r.rater}];
    cell.window.add(r.score);
    cell.lifetime.add(r.score);
  }
  void reset_window() {
    for (auto& [key, cell] : cells) cell.window = PairStats{};
  }
  void transfer(NodeId ratee) {
    // Transfer within the model is a no-op on totals: the data moves
    // between shards but the union is unchanged. Handled by the harness.
    (void)ratee;
  }
  [[nodiscard]] PairStats window_totals(NodeId ratee) const {
    PairStats total;
    for (const auto& [key, cell] : cells)
      if (key.first == ratee) total += cell.window;
    return total;
  }
  [[nodiscard]] PairStats lifetime_totals(NodeId ratee) const {
    PairStats total;
    for (const auto& [key, cell] : cells)
      if (key.first == ratee) total += cell.lifetime;
    return total;
  }
  [[nodiscard]] PairStats window_pair(NodeId ratee, NodeId rater) const {
    auto it = cells.find({ratee, rater});
    return it == cells.end() ? PairStats{} : it->second.window;
  }
};

class StoreModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreModelTest, RandomOperationSequencesAgree) {
  constexpr std::size_t kNodes = 12;
  util::Rng rng(GetParam());
  RatingStore store(kNodes);
  ModelStore model;

  for (int op = 0; op < 3000; ++op) {
    const double dice = rng.next_double();
    if (dice < 0.9) {
      Rating r;
      r.rater = static_cast<NodeId>(rng.next_below(kNodes));
      r.ratee = static_cast<NodeId>(rng.next_below(kNodes));
      const double s = rng.next_double();
      r.score = s < 0.5 ? Score::kPositive
                        : (s < 0.85 ? Score::kNegative : Score::kNeutral);
      const bool accepted = store.ingest(r);
      EXPECT_EQ(accepted, r.rater != r.ratee);
      model.ingest(r);
    } else if (dice < 0.95) {
      store.reset_window();
      model.reset_window();
    } else {
      // Spot-check a random ratee against the model.
      const auto ratee = static_cast<NodeId>(rng.next_below(kNodes));
      EXPECT_EQ(store.window_totals(ratee), model.window_totals(ratee));
      EXPECT_EQ(store.lifetime_totals(ratee), model.lifetime_totals(ratee));
      const auto rater = static_cast<NodeId>(rng.next_below(kNodes));
      EXPECT_EQ(store.window_pair(ratee, rater),
                model.window_pair(ratee, rater));
    }
  }

  // Full final audit.
  for (NodeId ratee = 0; ratee < kNodes; ++ratee) {
    EXPECT_EQ(store.window_totals(ratee), model.window_totals(ratee));
    EXPECT_EQ(store.lifetime_totals(ratee), model.lifetime_totals(ratee));
    EXPECT_EQ(store.reputation(ratee),
              model.lifetime_totals(ratee).reputation_delta());
    for (NodeId rater = 0; rater < kNodes; ++rater) {
      EXPECT_EQ(store.window_pair(ratee, rater),
                model.window_pair(ratee, rater));
    }
  }
}

TEST_P(StoreModelTest, TransferPreservesUnion) {
  constexpr std::size_t kNodes = 10;
  util::Rng rng(GetParam() ^ 0xabcdef);
  RatingStore a(kNodes);
  RatingStore b(kNodes);
  RatingStore reference(kNodes);

  for (int op = 0; op < 1000; ++op) {
    Rating r;
    r.rater = static_cast<NodeId>(rng.next_below(kNodes));
    r.ratee = static_cast<NodeId>(rng.next_below(kNodes));
    if (r.rater == r.ratee) continue;
    r.score = rng.chance(0.7) ? Score::kPositive : Score::kNegative;
    (rng.chance(0.5) ? a : b).ingest(r);
    reference.ingest(r);

    if (op % 100 == 99) {
      // Shuffle a random ratee's rows between the two stores.
      const auto ratee = static_cast<NodeId>(rng.next_below(kNodes));
      if (rng.chance(0.5)) a.transfer_ratee(b, ratee);
      else b.transfer_ratee(a, ratee);
    }
  }

  for (NodeId ratee = 0; ratee < kNodes; ++ratee) {
    const PairStats combined =
        a.window_totals(ratee) + b.window_totals(ratee);
    EXPECT_EQ(combined, reference.window_totals(ratee)) << "ratee " << ratee;
    const PairStats lifetime =
        a.lifetime_totals(ratee) + b.lifetime_totals(ratee);
    EXPECT_EQ(lifetime, reference.lifetime_totals(ratee));
    for (NodeId rater = 0; rater < kNodes; ++rater) {
      EXPECT_EQ(a.window_pair(ratee, rater) + b.window_pair(ratee, rater),
                reference.window_pair(ratee, rater));
    }
  }
}

TEST_P(StoreModelTest, SparseSnapshotSurvivesTransferInterleavings) {
  constexpr std::size_t kNodes = 14;
  util::Rng rng(GetParam() ^ 0x517cc1b7u);
  RatingStore a(kNodes);
  RatingStore b(kNodes);
  RatingStore reference(kNodes);

  for (int op = 0; op < 2000; ++op) {
    const double dice = rng.next_double();
    if (dice < 0.85) {
      Rating r;
      r.rater = static_cast<NodeId>(rng.next_below(kNodes));
      r.ratee = static_cast<NodeId>(rng.next_below(kNodes));
      if (r.rater == r.ratee) continue;
      r.score = rng.chance(0.6) ? Score::kPositive : Score::kNegative;
      (rng.chance(0.5) ? a : b).ingest(r);
      reference.ingest(r);
    } else if (dice < 0.90) {
      // Window rollover hits every shard and the reference in the same
      // step — the two horizons must never diverge across shards.
      a.reset_window();
      b.reset_window();
      reference.reset_window();
    } else if (dice < 0.97) {
      // Shard handoff mid-window.
      const auto ratee = static_cast<NodeId>(rng.next_below(kNodes));
      if (rng.chance(0.5)) a.transfer_ratee(b, ratee);
      else b.transfer_ratee(a, ratee);
    } else {
      const auto ratee = static_cast<NodeId>(rng.next_below(kNodes));
      EXPECT_EQ(a.window_totals(ratee) + b.window_totals(ratee),
                reference.window_totals(ratee));
      EXPECT_EQ(a.lifetime_totals(ratee) + b.lifetime_totals(ratee),
                reference.lifetime_totals(ratee));
    }
  }

  // Consolidate every row into one store (a transfer storm in itself)
  // and require it to reproduce the reference at both horizons.
  for (NodeId ratee = 0; ratee < kNodes; ++ratee) b.transfer_ratee(a, ratee);
  for (NodeId ratee = 0; ratee < kNodes; ++ratee) {
    EXPECT_EQ(a.window_totals(ratee), reference.window_totals(ratee));
    EXPECT_EQ(a.lifetime_totals(ratee), reference.lifetime_totals(ratee));
    for (NodeId rater = 0; rater < kNodes; ++rater) {
      EXPECT_EQ(a.window_pair(ratee, rater),
                reference.window_pair(ratee, rater));
    }
  }

  // The snapshot a manager would take of the transferred store must be
  // identical under both matrix backends — the sparse representation sees
  // the exact state the dense oracle sees.
  std::int64_t max_rep = 1;
  for (NodeId i = 0; i < kNodes; ++i)
    max_rep = std::max(max_rep, reference.reputation(i));
  std::vector<double> reps(kNodes, 0.0);
  for (NodeId i = 0; i < kNodes; ++i) {
    if (reference.reputation(i) > 0)
      reps[i] = static_cast<double>(reference.reputation(i)) /
                static_cast<double>(max_rep);
  }
  const RatingMatrix dense =
      RatingMatrix::build(a, reps, 0.05, 3, MatrixBackend::kDense);
  const RatingMatrix sparse =
      RatingMatrix::build(a, reps, 0.05, 3, MatrixBackend::kSparse);
  for (NodeId i = 0; i < kNodes; ++i) {
    EXPECT_EQ(dense.high_reputed(i), sparse.high_reputed(i));
    EXPECT_EQ(dense.totals(i), sparse.totals(i));
    EXPECT_EQ(dense.frequent_totals(i), sparse.frequent_totals(i));
    for (NodeId j = 0; j < kNodes; ++j)
      EXPECT_EQ(dense.cell(i, j), sparse.cell(i, j));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreModelTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace p2prep::rating
