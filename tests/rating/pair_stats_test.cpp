#include "rating/pair_stats.h"

#include <gtest/gtest.h>

namespace p2prep::rating {
namespace {

TEST(PairStatsTest, StartsEmpty) {
  PairStats s;
  EXPECT_EQ(s.total, 0u);
  EXPECT_EQ(s.positive, 0u);
  EXPECT_EQ(s.negative, 0u);
  EXPECT_EQ(s.neutral(), 0u);
  EXPECT_EQ(s.positive_fraction(), 0.0);
  EXPECT_EQ(s.reputation_delta(), 0);
}

TEST(PairStatsTest, AddClassifiesScores) {
  PairStats s;
  s.add(Score::kPositive);
  s.add(Score::kPositive);
  s.add(Score::kNegative);
  s.add(Score::kNeutral);
  EXPECT_EQ(s.total, 4u);
  EXPECT_EQ(s.positive, 2u);
  EXPECT_EQ(s.negative, 1u);
  EXPECT_EQ(s.neutral(), 1u);
}

TEST(PairStatsTest, PositiveFraction) {
  PairStats s;
  s.add(Score::kPositive);
  s.add(Score::kPositive);
  s.add(Score::kPositive);
  s.add(Score::kNegative);
  EXPECT_DOUBLE_EQ(s.positive_fraction(), 0.75);
}

TEST(PairStatsTest, ReputationDeltaIsSignedSum) {
  PairStats s;
  s.add(Score::kPositive);
  s.add(Score::kNegative);
  s.add(Score::kNegative);
  s.add(Score::kNeutral);
  EXPECT_EQ(s.reputation_delta(), -1);
}

TEST(PairStatsTest, AdditionMergesCounters) {
  PairStats a;
  a.add(Score::kPositive);
  PairStats b;
  b.add(Score::kNegative);
  b.add(Score::kNeutral);
  const PairStats c = a + b;
  EXPECT_EQ(c.total, 3u);
  EXPECT_EQ(c.positive, 1u);
  EXPECT_EQ(c.negative, 1u);
  EXPECT_EQ(c.neutral(), 1u);
}

TEST(PairStatsTest, SubtractionRemovesSubAggregate) {
  PairStats whole;
  for (int i = 0; i < 5; ++i) whole.add(Score::kPositive);
  for (int i = 0; i < 3; ++i) whole.add(Score::kNegative);
  PairStats part;
  part.add(Score::kPositive);
  part.add(Score::kNegative);
  const PairStats rest = whole - part;
  EXPECT_EQ(rest.total, 6u);
  EXPECT_EQ(rest.positive, 4u);
  EXPECT_EQ(rest.negative, 2u);
}

TEST(PairStatsTest, AddSubRoundTrips) {
  PairStats a;
  a.add(Score::kPositive);
  a.add(Score::kNegative);
  PairStats b;
  b.add(Score::kNeutral);
  EXPECT_EQ((a + b) - b, a);
}

TEST(PairStatsTest, ConstexprUsable) {
  constexpr PairStats s = [] {
    PairStats x;
    x.add(Score::kPositive);
    x.add(Score::kNegative);
    return x;
  }();
  static_assert(s.total == 2);
  static_assert(s.reputation_delta() == 0);
  EXPECT_EQ(s.total, 2u);
}

}  // namespace
}  // namespace p2prep::rating
