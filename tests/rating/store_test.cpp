#include "rating/store.h"

#include <gtest/gtest.h>

#include <set>

namespace p2prep::rating {
namespace {

Rating make(NodeId rater, NodeId ratee, Score s, Tick t = 0) {
  return {.rater = rater, .ratee = ratee, .score = s, .time = t};
}

TEST(RatingStoreTest, StartsEmpty) {
  RatingStore store(5);
  EXPECT_EQ(store.num_nodes(), 5u);
  EXPECT_EQ(store.event_count(), 0u);
  EXPECT_EQ(store.window_totals(0).total, 0u);
  EXPECT_EQ(store.reputation(0), 0);
}

TEST(RatingStoreTest, IngestUpdatesBothHorizons) {
  RatingStore store(3);
  ASSERT_TRUE(store.ingest(make(0, 1, Score::kPositive)));
  ASSERT_TRUE(store.ingest(make(0, 1, Score::kNegative)));
  ASSERT_TRUE(store.ingest(make(2, 1, Score::kPositive)));

  EXPECT_EQ(store.event_count(), 3u);
  EXPECT_EQ(store.window_pair(1, 0).total, 2u);
  EXPECT_EQ(store.window_pair(1, 0).positive, 1u);
  EXPECT_EQ(store.window_totals(1).total, 3u);
  EXPECT_EQ(store.lifetime_pair(1, 0).total, 2u);
  EXPECT_EQ(store.lifetime_totals(1).positive, 2u);
  EXPECT_EQ(store.reputation(1), 1);  // +1 -1 +1
}

TEST(RatingStoreTest, RejectsSelfRating) {
  RatingStore store(3);
  EXPECT_FALSE(store.ingest(make(1, 1, Score::kPositive)));
  EXPECT_EQ(store.event_count(), 0u);
}

TEST(RatingStoreTest, RejectsOutOfRangeIds) {
  RatingStore store(3);
  EXPECT_FALSE(store.ingest(make(0, 3, Score::kPositive)));
  EXPECT_FALSE(store.ingest(make(3, 0, Score::kPositive)));
  EXPECT_FALSE(store.ingest(make(kInvalidNode, 0, Score::kPositive)));
}

TEST(RatingStoreTest, WindowResetPreservesLifetime) {
  RatingStore store(3);
  store.ingest(make(0, 1, Score::kPositive));
  store.ingest(make(2, 1, Score::kNegative));
  store.reset_window();

  EXPECT_EQ(store.window_pair(1, 0).total, 0u);
  EXPECT_EQ(store.window_totals(1).total, 0u);
  EXPECT_EQ(store.lifetime_pair(1, 0).total, 1u);
  EXPECT_EQ(store.lifetime_totals(1).total, 2u);
  EXPECT_EQ(store.reputation(1), 0);

  // New window accumulates independently.
  store.ingest(make(0, 1, Score::kPositive));
  EXPECT_EQ(store.window_pair(1, 0).total, 1u);
  EXPECT_EQ(store.lifetime_pair(1, 0).total, 2u);
}

TEST(RatingStoreTest, ComplementIsTotalsMinusPair) {
  RatingStore store(4);
  store.ingest(make(0, 1, Score::kPositive));
  store.ingest(make(0, 1, Score::kPositive));
  store.ingest(make(2, 1, Score::kNegative));
  store.ingest(make(3, 1, Score::kPositive));

  const PairStats comp = store.window_complement(1, 0);
  EXPECT_EQ(comp.total, 2u);
  EXPECT_EQ(comp.positive, 1u);
  EXPECT_EQ(comp.negative, 1u);

  const PairStats comp_absent = store.window_complement(1, 3);
  EXPECT_EQ(comp_absent.total, 3u);
}

TEST(RatingStoreTest, ForEachWindowRaterVisitsAllAndOnlyWindowRaters) {
  RatingStore store(4);
  store.ingest(make(0, 1, Score::kPositive));
  store.ingest(make(2, 1, Score::kNegative));
  store.reset_window();
  store.ingest(make(3, 1, Score::kPositive));

  std::set<NodeId> seen;
  store.for_each_window_rater(1, [&seen](NodeId rater, const PairStats& s) {
    EXPECT_GT(s.total, 0u);
    seen.insert(rater);
  });
  EXPECT_EQ(seen, std::set<NodeId>{3});
  EXPECT_EQ(store.window_rater_count(1), 1u);
}

TEST(RatingStoreTest, ResizeGrowsAndPreserves) {
  RatingStore store(2);
  store.ingest(make(0, 1, Score::kPositive));
  store.resize(5);
  EXPECT_EQ(store.num_nodes(), 5u);
  EXPECT_EQ(store.window_pair(1, 0).total, 1u);
  EXPECT_TRUE(store.ingest(make(4, 1, Score::kNegative)));
}

TEST(RatingStoreTest, UnknownPairIsZero) {
  RatingStore store(3);
  store.ingest(make(0, 1, Score::kPositive));
  EXPECT_EQ(store.window_pair(1, 2).total, 0u);
  EXPECT_EQ(store.lifetime_pair(2, 0).total, 0u);
}

TEST(RatingStoreTest, ReputationSumsSignedValues) {
  RatingStore store(3);
  for (int i = 0; i < 5; ++i) store.ingest(make(0, 2, Score::kPositive));
  for (int i = 0; i < 2; ++i) store.ingest(make(1, 2, Score::kNegative));
  store.ingest(make(1, 2, Score::kNeutral));
  EXPECT_EQ(store.reputation(2), 3);
}

}  // namespace
}  // namespace p2prep::rating
