#include "rating/types.h"

#include <gtest/gtest.h>

namespace p2prep::rating {
namespace {

TEST(ScoreTest, ValuesMatchPaperModel) {
  EXPECT_EQ(score_value(Score::kNegative), -1);
  EXPECT_EQ(score_value(Score::kNeutral), 0);
  EXPECT_EQ(score_value(Score::kPositive), 1);
}

TEST(ScoreFromStarsTest, AmazonMapping) {
  EXPECT_EQ(score_from_stars(1), Score::kNegative);
  EXPECT_EQ(score_from_stars(2), Score::kNegative);
  EXPECT_EQ(score_from_stars(3), Score::kNeutral);
  EXPECT_EQ(score_from_stars(4), Score::kPositive);
  EXPECT_EQ(score_from_stars(5), Score::kPositive);
}

TEST(ScoreFromStarsTest, OutOfRangeClamps) {
  EXPECT_EQ(score_from_stars(0), Score::kNegative);
  EXPECT_EQ(score_from_stars(-3), Score::kNegative);
  EXPECT_EQ(score_from_stars(6), Score::kPositive);
  EXPECT_EQ(score_from_stars(100), Score::kPositive);
}

TEST(RatingTest, DefaultIsInvalid) {
  Rating r;
  EXPECT_EQ(r.rater, kInvalidNode);
  EXPECT_EQ(r.ratee, kInvalidNode);
  EXPECT_EQ(r.score, Score::kNeutral);
  EXPECT_EQ(r.time, 0u);
}

TEST(RatingTest, EqualityIsFieldWise) {
  const Rating a{.rater = 1, .ratee = 2, .score = Score::kPositive, .time = 3};
  Rating b = a;
  EXPECT_EQ(a, b);
  b.score = Score::kNegative;
  EXPECT_NE(a, b);
}

TEST(NodeIdTest, InvalidIsMaxValue) {
  EXPECT_EQ(kInvalidNode, static_cast<NodeId>(-1));
}

}  // namespace
}  // namespace p2prep::rating
