#include "rating/matrix.h"

#include <gtest/gtest.h>

#include <vector>

namespace p2prep::rating {
namespace {

RatingStore populated_store() {
  RatingStore store(4);
  // Node 1 rated by 0 (2 pos), by 2 (1 neg); node 2 rated by 3 (1 pos).
  store.ingest({.rater = 0, .ratee = 1, .score = Score::kPositive, .time = 0});
  store.ingest({.rater = 0, .ratee = 1, .score = Score::kPositive, .time = 1});
  store.ingest({.rater = 2, .ratee = 1, .score = Score::kNegative, .time = 2});
  store.ingest({.rater = 3, .ratee = 2, .score = Score::kPositive, .time = 3});
  return store;
}

TEST(RatingMatrixTest, BuildCopiesWindowAggregates) {
  const RatingStore store = populated_store();
  const std::vector<double> reps{0.0, 0.5, 0.02, 0.1};
  const RatingMatrix m = RatingMatrix::build(store, reps, 0.05);

  EXPECT_EQ(m.size(), 4u);
  EXPECT_EQ(m.cell(1, 0).total, 2u);
  EXPECT_EQ(m.cell(1, 0).positive, 2u);
  EXPECT_EQ(m.cell(1, 2).negative, 1u);
  EXPECT_EQ(m.cell(2, 3).positive, 1u);
  EXPECT_EQ(m.cell(0, 1).total, 0u);
  EXPECT_EQ(m.totals(1).total, 3u);
  EXPECT_EQ(m.window_reputation(1), 1);  // 2 pos - 1 neg
}

TEST(RatingMatrixTest, HighReputedFlagFollowsThreshold) {
  const RatingStore store = populated_store();
  const std::vector<double> reps{0.0, 0.5, 0.02, 0.1};
  const RatingMatrix m = RatingMatrix::build(store, reps, 0.05);

  EXPECT_FALSE(m.high_reputed(0));
  EXPECT_TRUE(m.high_reputed(1));
  EXPECT_FALSE(m.high_reputed(2));
  EXPECT_TRUE(m.high_reputed(3));
  EXPECT_EQ(m.high_reputed_count(), 2u);
  EXPECT_DOUBLE_EQ(m.global_reputation(1), 0.5);
}

TEST(RatingMatrixTest, ThresholdIsStrict) {
  RatingStore store(2);
  const std::vector<double> reps{0.05, 0.050001};
  const RatingMatrix m = RatingMatrix::build(store, reps, 0.05);
  EXPECT_FALSE(m.high_reputed(0));  // R > T_R, not >=
  EXPECT_TRUE(m.high_reputed(1));
}

TEST(RatingMatrixTest, SetGlobalReputationMaintainsHighCount) {
  RatingMatrix m(3);
  EXPECT_EQ(m.high_reputed_count(), 0u);
  m.set_global_reputation(0, 0.5, 0.05);
  EXPECT_EQ(m.high_reputed_count(), 1u);
  m.set_global_reputation(0, 0.6, 0.05);  // still high: count unchanged
  EXPECT_EQ(m.high_reputed_count(), 1u);
  m.set_global_reputation(0, 0.01, 0.05);
  EXPECT_EQ(m.high_reputed_count(), 0u);
}

TEST(RatingMatrixTest, AddRatingUpdatesCellAndTotals) {
  RatingMatrix m(3);
  m.add_rating(1, 0, Score::kPositive);
  m.add_rating(1, 0, Score::kNegative);
  m.add_rating(1, 2, Score::kPositive);
  EXPECT_EQ(m.cell(1, 0).total, 2u);
  EXPECT_EQ(m.totals(1).total, 3u);
  EXPECT_EQ(m.window_reputation(1), 1);
}

TEST(RatingMatrixTest, CellVisitorMatchesCells) {
  RatingMatrix m(3);
  m.add_rating(1, 2, Score::kPositive);
  // The dense backend stores all n columns; the visitor exposes them all.
  std::size_t visited = 0;
  m.for_each_cell(1, [&](NodeId k, const PairStats& stats) {
    ++visited;
    EXPECT_EQ(stats, m.cell(1, k));
  });
  EXPECT_EQ(visited, 3u);
  EXPECT_EQ(m.cell(1, 2).positive, 1u);
  EXPECT_EQ(m.cell(1, 0).total, 0u);
  EXPECT_NE(m.cell_or_null(1, 2), nullptr);
  EXPECT_EQ(m.cell_or_null(1, 0), nullptr);
}

TEST(RatingMatrixTest, SparseBackendStoresOnlyTouchedCells) {
  RatingMatrix m(4, MatrixBackend::kSparse);
  EXPECT_EQ(m.backend(), MatrixBackend::kSparse);
  m.add_rating(1, 0, Score::kPositive);
  m.add_rating(1, 0, Score::kNegative);
  m.add_rating(1, 3, Score::kPositive);

  std::size_t visited = 0;
  m.for_each_cell(1, [&](NodeId, const PairStats&) { ++visited; });
  EXPECT_EQ(visited, 2u);  // only the two touched cells are stored

  EXPECT_EQ(m.cell(1, 0).total, 2u);
  EXPECT_EQ(m.cell(1, 2).total, 0u);  // absent cell reads as empty
  EXPECT_EQ(m.cell_or_null(1, 2), nullptr);
  EXPECT_EQ(m.totals(1).total, 3u);
  EXPECT_EQ(m.window_reputation(1), 1);

  // Ordered enumeration: ascending rater, non-empty only.
  std::vector<NodeId> raters;
  m.for_each_nonzero_cell(
      1, [&](NodeId k, const PairStats&) { raters.push_back(k); });
  EXPECT_EQ(raters, (std::vector<NodeId>{0, 3}));

  m.clear_window();
  EXPECT_EQ(m.totals(1).total, 0u);
  EXPECT_EQ(m.cell(1, 0).total, 0u);
  visited = 0;
  m.for_each_cell(1, [&](NodeId, const PairStats&) { ++visited; });
  EXPECT_EQ(visited, 0u);
}

TEST(RatingMatrixTest, SparseFootprintBeatsDenseOracle) {
  constexpr std::size_t kNodes = 512;
  RatingMatrix sparse(kNodes, MatrixBackend::kSparse);
  RatingMatrix dense(kNodes, MatrixBackend::kDense);
  for (NodeId i = 0; i + 1 < kNodes; i += 2) {
    sparse.add_rating(i, i + 1, Score::kPositive);
    dense.add_rating(i, i + 1, Score::kPositive);
  }
  EXPECT_LT(sparse.approx_memory_bytes(), dense.approx_memory_bytes() / 10);
  // The analytic oracle is a floor of the measured dense footprint (the
  // measurement adds the pair-mark set's overhead on top).
  EXPECT_GE(dense.approx_memory_bytes(),
            RatingMatrix::dense_footprint_bytes(kNodes));
  EXPECT_LT(dense.approx_memory_bytes(),
            RatingMatrix::dense_footprint_bytes(kNodes) + 4096);
}

TEST(RatingMatrixTest, MarkCheckedIsSymmetric) {
  RatingMatrix m(3);
  EXPECT_FALSE(m.checked(0, 1));
  m.mark_checked(0, 1);
  EXPECT_TRUE(m.checked(0, 1));
  EXPECT_TRUE(m.checked(1, 0));
  EXPECT_FALSE(m.checked(0, 2));
  m.clear_marks();
  EXPECT_FALSE(m.checked(0, 1));
}

TEST(RatingMatrixTest, BuildFlagsNothingWhenAllLow) {
  RatingStore store(3);
  const std::vector<double> reps{0.0, 0.0, 0.0};
  const RatingMatrix m = RatingMatrix::build(store, reps, 0.05);
  EXPECT_EQ(m.high_reputed_count(), 0u);
}

}  // namespace
}  // namespace p2prep::rating
