// Manager churn: joins/leaves of DHT managers with shard handoff must
// preserve every reputation record and keep detection working.
#include <gtest/gtest.h>

#include "managers/decentralized.h"
#include "util/rng.h"

namespace p2prep::managers {
namespace {

using rating::Rating;
using rating::Score;

DecentralizedReputationSystem::Config config(std::size_t n) {
  DecentralizedReputationSystem::Config c;
  c.num_nodes = n;
  c.detector.positive_fraction_min = 0.8;
  c.detector.complement_fraction_max = 0.2;
  c.detector.frequency_min = 20;
  c.detector.high_rep_threshold = 0.0;
  return c;
}

void feed(DecentralizedReputationSystem& sys, std::size_t n,
          std::uint64_t seed) {
  util::Rng rng(seed);
  for (int k = 0; k < 40; ++k) {
    sys.ingest({0, 1, Score::kPositive, 0});
    sys.ingest({1, 0, Score::kPositive, 0});
  }
  for (rating::NodeId rater = 0; rater < n; ++rater) {
    for (int k = 0; k < 4; ++k) {
      auto ratee = static_cast<rating::NodeId>(rng.next_below(n));
      if (ratee == rater) ratee = static_cast<rating::NodeId>((ratee + 1) % n);
      sys.ingest({rater, ratee,
                  rng.chance(ratee < 2 ? 0.0 : 0.85) ? Score::kPositive
                                                     : Score::kNegative,
                  0});
    }
  }
}

std::vector<std::int64_t> snapshot(DecentralizedReputationSystem& sys,
                                   std::size_t n) {
  std::vector<std::int64_t> reps(n);
  for (rating::NodeId id = 0; id < n; ++id) reps[id] = sys.reputation(id);
  return reps;
}

TEST(ChurnTest, JoinPreservesAllReputations) {
  DecentralizedReputationSystem sys(config(60), {0, 1, 2, 3, 4});
  feed(sys, 60, 1);
  const auto before = snapshot(sys, 60);

  const auto stats = sys.add_manager(30);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(sys.num_managers(), 6u);
  EXPECT_EQ(snapshot(sys, 60), before);
  // The new manager owns whatever hashed into its arc; handoff stats are
  // consistent either way.
  EXPECT_EQ(stats->transfer_messages, stats->reassigned_nodes);
}

TEST(ChurnTest, LeavePreservesAllReputations) {
  DecentralizedReputationSystem sys(config(60), {0, 1, 2, 3, 4});
  feed(sys, 60, 2);
  const auto before = snapshot(sys, 60);

  // Pick a manager that owns at least one node so the handoff is real.
  rating::NodeId victim = rating::kInvalidNode;
  for (rating::NodeId m : {0u, 1u, 2u, 3u, 4u}) {
    for (rating::NodeId id = 0; id < 60; ++id) {
      if (sys.manager_of(id) == m) {
        victim = m;
        break;
      }
    }
    if (victim != rating::kInvalidNode) break;
  }
  ASSERT_NE(victim, rating::kInvalidNode);

  const auto stats = sys.remove_manager(victim);
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->reassigned_nodes, 0u);
  EXPECT_GT(stats->transferred_ratings, 0u);
  EXPECT_EQ(sys.num_managers(), 4u);
  EXPECT_EQ(snapshot(sys, 60), before);
  // The departed manager owns nothing anymore.
  for (rating::NodeId id = 0; id < 60; ++id)
    EXPECT_NE(sys.manager_of(id), victim);
}

TEST(ChurnTest, DetectionSurvivesChurn) {
  DecentralizedReputationSystem sys(config(60), {0, 1, 2, 3, 4});
  feed(sys, 60, 3);
  sys.add_manager(40);
  sys.add_manager(41);
  sys.remove_manager(2);
  const auto outcome =
      sys.run_detection(DetectionMethod::kOptimized);
  EXPECT_TRUE(outcome.report.contains(0, 1));
}

TEST(ChurnTest, InvalidOperationsRefused) {
  DecentralizedReputationSystem sys(config(20), {0, 1});
  EXPECT_FALSE(sys.add_manager(0).has_value());    // already a manager
  EXPECT_FALSE(sys.add_manager(100).has_value());  // out of range
  EXPECT_FALSE(sys.remove_manager(7).has_value()); // not a manager
  ASSERT_TRUE(sys.remove_manager(0).has_value());
  EXPECT_FALSE(sys.remove_manager(1).has_value()); // last manager stays
}

TEST(ChurnTest, RepeatedChurnIsStable) {
  DecentralizedReputationSystem sys(config(40), {0, 1, 2});
  feed(sys, 40, 4);
  const auto before = snapshot(sys, 40);
  for (rating::NodeId id = 10; id < 20; ++id) sys.add_manager(id);
  for (rating::NodeId id = 10; id < 20; id += 2) sys.remove_manager(id);
  EXPECT_EQ(snapshot(sys, 40), before);
  // Ingest still routes correctly after churn.
  EXPECT_TRUE(sys.ingest({5, 6, Score::kPositive, 0}));
  EXPECT_EQ(sys.shard(sys.manager_of(6)).window_pair(6, 5).total, 1u);
}

TEST(ChurnTest, QueriesRouteCorrectlyAfterChurn) {
  DecentralizedReputationSystem sys(config(40), {0, 1, 2});
  feed(sys, 40, 5);
  sys.add_manager(25);
  for (rating::NodeId target = 0; target < 40; ++target) {
    const auto answer = sys.query_reputation(3, target);
    EXPECT_EQ(answer.manager, sys.manager_of(target));
    EXPECT_EQ(answer.reputation, sys.reputation(target));
  }
}

}  // namespace
}  // namespace p2prep::managers
