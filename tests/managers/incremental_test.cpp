#include "managers/incremental.h"

#include <gtest/gtest.h>

#include "core/basic_detector.h"
#include "core/optimized_detector.h"
#include "reputation/summation.h"
#include "util/rng.h"

namespace p2prep::managers {
namespace {

using rating::Rating;
using rating::Score;

core::DetectorConfig config() {
  core::DetectorConfig c;
  c.positive_fraction_min = 0.8;
  c.complement_fraction_max = 0.2;
  c.frequency_min = 20;
  c.high_rep_threshold = 0.05;
  return c;
}

/// Streams the same random workload into both manager variants.
template <typename Fn>
void stream_workload(std::uint64_t seed, std::size_t n, Fn&& deliver) {
  util::Rng rng(seed);
  // Two colluding pairs.
  for (int k = 0; k < 40; ++k) {
    deliver({0, 1, Score::kPositive, 0});
    deliver({1, 0, Score::kPositive, 0});
    deliver({2, 3, Score::kPositive, 0});
    deliver({3, 2, Score::kPositive, 0});
  }
  for (rating::NodeId rater = 0; rater < n; ++rater) {
    for (int k = 0; k < 5; ++k) {
      auto ratee = static_cast<rating::NodeId>(rng.next_below(n));
      if (ratee == rater) ratee = static_cast<rating::NodeId>((ratee + 1) % n);
      deliver({rater, ratee,
               rng.chance(ratee < 4 ? 0.05 : 0.85) ? Score::kPositive
                                                   : Score::kNegative,
               0});
    }
  }
}

TEST(IncrementalManagerTest, MatchesSnapshotManagerDetection) {
  constexpr std::size_t kN = 50;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    reputation::SummationEngine engine_a;
    reputation::SummationEngine engine_b;
    CentralizedManager snapshot(kN, engine_a, config());
    IncrementalCentralizedManager incremental(kN, engine_b, config());

    stream_workload(seed, kN, [&](const Rating& r) {
      EXPECT_EQ(snapshot.ingest(r), incremental.ingest(r));
    });
    snapshot.update_reputations();
    incremental.update_reputations();

    core::OptimizedCollusionDetector detector(config());
    const auto ra = snapshot.run_detection(detector);
    const auto rb = incremental.run_detection(detector);
    ASSERT_EQ(ra.pairs.size(), rb.pairs.size()) << "seed " << seed;
    for (std::size_t i = 0; i < ra.pairs.size(); ++i) {
      EXPECT_EQ(ra.pairs[i].first, rb.pairs[i].first);
      EXPECT_EQ(ra.pairs[i].second, rb.pairs[i].second);
    }
    EXPECT_EQ(snapshot.detected().size(), incremental.detected().size());
  }
}

TEST(IncrementalManagerTest, DetectsAndSuppresses) {
  reputation::SummationEngine engine;
  IncrementalCentralizedManager mgr(30, engine, config());
  stream_workload(9, 30, [&](const Rating& r) { mgr.ingest(r); });
  mgr.update_reputations();
  core::BasicCollusionDetector detector(config());
  const auto report = mgr.run_detection(detector);
  EXPECT_TRUE(report.contains(0, 1));
  EXPECT_TRUE(report.contains(2, 3));
  EXPECT_EQ(engine.reputation(0), 0.0);
  EXPECT_TRUE(mgr.detected().contains(0));
}

TEST(IncrementalManagerTest, WindowResetClearsCounters) {
  reputation::SummationEngine engine;
  IncrementalCentralizedManager mgr(20, engine, config());
  stream_workload(5, 20, [&](const Rating& r) { mgr.ingest(r); });
  mgr.update_reputations();
  mgr.reset_window();
  EXPECT_EQ(mgr.matrix().totals(1).total, 0u);
  core::OptimizedCollusionDetector detector(config());
  EXPECT_TRUE(mgr.run_detection(detector).pairs.empty());
  // Reputations survive the window rollover.
  EXPECT_GT(engine.reputation(1), 0.0);
}

TEST(IncrementalManagerTest, RejectsInvalidRatings) {
  reputation::SummationEngine engine;
  IncrementalCentralizedManager mgr(10, engine, config());
  EXPECT_FALSE(mgr.ingest({3, 3, Score::kPositive, 0}));
  EXPECT_FALSE(mgr.ingest({3, 10, Score::kPositive, 0}));
  EXPECT_FALSE(mgr.ingest({10, 3, Score::kPositive, 0}));
}

TEST(IncrementalManagerTest, FrequentAggregateMaintained) {
  reputation::SummationEngine engine;
  IncrementalCentralizedManager mgr(10, engine, config());
  for (int k = 0; k < 25; ++k)
    mgr.ingest({0, 1, Score::kPositive, 0});
  EXPECT_EQ(mgr.matrix().frequent_totals(1).total, 25u);
  EXPECT_EQ(mgr.matrix().frequency_threshold(), config().frequency_min);
}

}  // namespace
}  // namespace p2prep::managers
