#include "managers/centralized.h"

#include <gtest/gtest.h>

#include "core/basic_detector.h"
#include "core/optimized_detector.h"
#include "reputation/summation.h"

namespace p2prep::managers {
namespace {

using rating::Rating;
using rating::Score;

core::DetectorConfig config() {
  core::DetectorConfig c;
  c.positive_fraction_min = 0.8;
  c.complement_fraction_max = 0.2;
  c.frequency_min = 20;
  c.high_rep_threshold = 0.05;
  return c;
}

Rating make(rating::NodeId rater, rating::NodeId ratee, Score s) {
  return {.rater = rater, .ratee = ratee, .score = s, .time = 0};
}

/// Colluders 0/1 bombard each other; crowd 3..n rates them negatively and
/// honest node 2 positively.
void feed_collusion(CentralizedManager& mgr, std::size_t n) {
  for (int k = 0; k < 50; ++k) {
    mgr.ingest(make(0, 1, Score::kPositive));
    mgr.ingest(make(1, 0, Score::kPositive));
  }
  for (rating::NodeId r = 3; r < n; ++r) {
    mgr.ingest(make(r, 0, Score::kNegative));
    mgr.ingest(make(r, 1, Score::kNegative));
    mgr.ingest(make(r, 2, Score::kPositive));
  }
}

TEST(CentralizedManagerTest, IngestFeedsStoreAndEngine) {
  reputation::SummationEngine engine;
  CentralizedManager mgr(10, engine, config());
  EXPECT_TRUE(mgr.ingest(make(0, 1, Score::kPositive)));
  EXPECT_EQ(mgr.store().event_count(), 1u);
  EXPECT_EQ(engine.raw_sum(1), 1);
  EXPECT_FALSE(mgr.ingest(make(0, 0, Score::kPositive)));  // self-rating
}

TEST(CentralizedManagerTest, SnapshotReflectsEngineReputations) {
  reputation::SummationEngine engine;
  CentralizedManager mgr(10, engine, config());
  feed_collusion(mgr, 10);
  mgr.update_reputations();
  const rating::RatingMatrix m = mgr.snapshot();
  EXPECT_EQ(m.size(), 10u);
  EXPECT_EQ(m.cell(1, 0).total, 50u);
  // Node 2 got all the crowd's positives: high-reputed after normalization.
  EXPECT_TRUE(m.high_reputed(2));
}

TEST(CentralizedManagerTest, DetectionFlagsAndSuppressesColluders) {
  reputation::SummationEngine engine;
  CentralizedManager mgr(20, engine, config());
  feed_collusion(mgr, 20);
  mgr.update_reputations();
  ASSERT_GT(engine.reputation(0), 0.05);  // colluders start high-reputed

  core::OptimizedCollusionDetector detector(config());
  const core::DetectionReport report = mgr.run_detection(detector);
  EXPECT_TRUE(report.contains(0, 1));
  EXPECT_TRUE(mgr.detected().contains(0));
  EXPECT_TRUE(mgr.detected().contains(1));
  // Suppression takes effect immediately.
  EXPECT_EQ(engine.reputation(0), 0.0);
  EXPECT_EQ(engine.reputation(1), 0.0);
  EXPECT_GT(engine.reputation(2), 0.0);
}

TEST(CentralizedManagerTest, NoSuppressLeavesEngineUntouched) {
  reputation::SummationEngine engine;
  CentralizedManager mgr(20, engine, config());
  feed_collusion(mgr, 20);
  mgr.update_reputations();
  const double before = engine.reputation(0);
  core::BasicCollusionDetector detector(config());
  const auto report = mgr.run_detection(
      detector, CentralizedManager::SuppressionMode::kNone);
  EXPECT_TRUE(report.contains(0, 1));
  EXPECT_TRUE(mgr.detected().empty());
  EXPECT_DOUBLE_EQ(engine.reputation(0), before);
}

TEST(CentralizedManagerTest, WindowResetClearsPairCounters) {
  reputation::SummationEngine engine;
  CentralizedManager mgr(20, engine, config());
  feed_collusion(mgr, 20);
  mgr.update_reputations();
  mgr.reset_window();
  core::OptimizedCollusionDetector detector(config());
  // No ratings in the new window: nothing to detect.
  const auto report = mgr.run_detection(detector);
  EXPECT_TRUE(report.pairs.empty());
}

TEST(CentralizedManagerTest, BasicAndOptimizedAgreeThroughManager) {
  reputation::SummationEngine e1;
  reputation::SummationEngine e2;
  CentralizedManager m1(20, e1, config());
  CentralizedManager m2(20, e2, config());
  feed_collusion(m1, 20);
  feed_collusion(m2, 20);
  m1.update_reputations();
  m2.update_reputations();
  core::BasicCollusionDetector basic(config());
  core::OptimizedCollusionDetector optimized(config());
  const auto rb = m1.run_detection(basic);
  const auto ro = m2.run_detection(optimized);
  ASSERT_EQ(rb.pairs.size(), ro.pairs.size());
  for (std::size_t i = 0; i < rb.pairs.size(); ++i) {
    EXPECT_EQ(rb.pairs[i].first, ro.pairs[i].first);
    EXPECT_EQ(rb.pairs[i].second, ro.pairs[i].second);
  }
}


TEST(CentralizedManagerTest, ConfirmationPolicyDelaysSuppression) {
  reputation::SummationEngine engine;
  CentralizedManager mgr(20, engine, config());
  mgr.set_confirmation_passes(2);
  EXPECT_EQ(mgr.confirmation_passes(), 2u);
  feed_collusion(mgr, 20);
  mgr.update_reputations();
  core::OptimizedCollusionDetector detector(config());

  // Pass 1: pair flagged, streak 1 < 2 -> no suppression yet.
  const auto first = mgr.run_detection(detector);
  EXPECT_TRUE(first.contains(0, 1));
  EXPECT_TRUE(mgr.detected().empty());
  EXPECT_GT(engine.reputation(0), 0.0);

  // Pass 2 over the same window: streak reaches 2 -> suppressed.
  const auto second = mgr.run_detection(detector);
  EXPECT_TRUE(second.contains(0, 1));
  EXPECT_TRUE(mgr.detected().contains(0));
  EXPECT_EQ(engine.reputation(0), 0.0);
}

TEST(CentralizedManagerTest, ConfirmationStreakResetsWhenPairVanishes) {
  reputation::SummationEngine engine;
  CentralizedManager mgr(20, engine, config());
  mgr.set_confirmation_passes(2);
  feed_collusion(mgr, 20);
  mgr.update_reputations();
  core::OptimizedCollusionDetector detector(config());
  (void)mgr.run_detection(detector);  // streak 1
  EXPECT_TRUE(mgr.detected().empty());

  // The window rolls over with no fresh collusion: the pair disappears
  // from detection and its streak resets.
  mgr.reset_window();
  (void)mgr.run_detection(detector);
  EXPECT_TRUE(mgr.detected().empty());

  // Colluding again restarts from streak 1.
  for (int k = 0; k < 50; ++k) {
    mgr.ingest(make(0, 1, Score::kPositive));
    mgr.ingest(make(1, 0, Score::kPositive));
  }
  for (rating::NodeId r = 3; r < 20; ++r) {
    mgr.ingest(make(r, 0, Score::kNegative));
    mgr.ingest(make(r, 1, Score::kNegative));
  }
  mgr.update_reputations();
  (void)mgr.run_detection(detector);
  EXPECT_TRUE(mgr.detected().empty());  // streak back at 1
  (void)mgr.run_detection(detector);
  EXPECT_TRUE(mgr.detected().contains(0));  // confirmed
}

TEST(CentralizedManagerTest, DefaultConfirmationIsImmediate) {
  reputation::SummationEngine engine;
  CentralizedManager mgr(20, engine, config());
  EXPECT_EQ(mgr.confirmation_passes(), 1u);
  mgr.set_confirmation_passes(0);  // clamped to 1
  EXPECT_EQ(mgr.confirmation_passes(), 1u);
}

}  // namespace
}  // namespace p2prep::managers
