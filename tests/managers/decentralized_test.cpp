#include "managers/decentralized.h"

#include <gtest/gtest.h>

#include "core/basic_detector.h"
#include "core/optimized_detector.h"
#include "rating/matrix.h"

namespace p2prep::managers {
namespace {

using rating::Rating;
using rating::Score;

DecentralizedReputationSystem::Config config(std::size_t n) {
  DecentralizedReputationSystem::Config c;
  c.num_nodes = n;
  c.detector.positive_fraction_min = 0.8;
  c.detector.complement_fraction_max = 0.2;
  c.detector.frequency_min = 20;
  // Raw summation units: any positive window sum is "high-reputed".
  c.detector.high_rep_threshold = 0.0;
  return c;
}

Rating make(rating::NodeId rater, rating::NodeId ratee, Score s) {
  return {.rater = rater, .ratee = ratee, .score = s, .time = 0};
}

void feed_collusion(DecentralizedReputationSystem& sys, std::size_t n) {
  for (int k = 0; k < 50; ++k) {
    sys.ingest(make(0, 1, Score::kPositive));
    sys.ingest(make(1, 0, Score::kPositive));
  }
  for (rating::NodeId r = 3; r < n; ++r) {
    sys.ingest(make(r, 0, Score::kNegative));
    sys.ingest(make(r, 1, Score::kNegative));
    sys.ingest(make(r, 2, Score::kPositive));
  }
}

TEST(DecentralizedTest, EveryNodeHasAManagerOnTheRing) {
  DecentralizedReputationSystem sys(config(50));
  EXPECT_EQ(sys.num_managers(), 50u);
  for (rating::NodeId id = 0; id < 50; ++id) {
    const rating::NodeId mgr = sys.manager_of(id);
    EXPECT_LT(mgr, 50u);
    EXPECT_TRUE(sys.ring().contains(mgr));
  }
}

TEST(DecentralizedTest, PowerNodeSubsetAsManagers) {
  DecentralizedReputationSystem sys(config(50), {0, 1, 2, 3, 4});
  EXPECT_EQ(sys.num_managers(), 5u);
  for (rating::NodeId id = 0; id < 50; ++id)
    EXPECT_LT(sys.manager_of(id), 5u);
}

TEST(DecentralizedTest, IngestRoutesToCorrectShard) {
  DecentralizedReputationSystem sys(config(30));
  EXPECT_TRUE(sys.ingest(make(5, 7, Score::kPositive)));
  const rating::NodeId mgr = sys.manager_of(7);
  EXPECT_EQ(sys.shard(mgr).window_pair(7, 5).total, 1u);
  EXPECT_EQ(sys.reputation(7), 1);
  EXPECT_FALSE(sys.ingest(make(5, 5, Score::kPositive)));
  EXPECT_GT(sys.transport_messages(), 0u);
}

TEST(DecentralizedTest, QueryReputationRoutesAndAnswers) {
  DecentralizedReputationSystem sys(config(30));
  sys.ingest(make(5, 7, Score::kPositive));
  sys.ingest(make(6, 7, Score::kPositive));
  const auto answer = sys.query_reputation(3, 7);
  EXPECT_EQ(answer.reputation, 2);
  EXPECT_EQ(answer.manager, sys.manager_of(7));
}

TEST(DecentralizedTest, DetectsCollusionAcrossShards) {
  DecentralizedReputationSystem sys(config(30));
  feed_collusion(sys, 30);
  const auto outcome =
      sys.run_detection(DetectionMethod::kOptimized);
  EXPECT_TRUE(outcome.report.contains(0, 1));
  EXPECT_TRUE(sys.detected().contains(0));
  EXPECT_TRUE(sys.detected().contains(1));
  // Suppressed nodes answer 0 to queries.
  EXPECT_EQ(sys.query_reputation(5, 0).reputation, 0);
  EXPECT_EQ(sys.reputation(0), 0);
}

TEST(DecentralizedTest, BasicAndOptimizedAgree) {
  DecentralizedReputationSystem a(config(40));
  DecentralizedReputationSystem b(config(40));
  feed_collusion(a, 40);
  feed_collusion(b, 40);
  const auto ra = a.run_detection(DetectionMethod::kBasic);
  const auto rb = b.run_detection(DetectionMethod::kOptimized);
  ASSERT_EQ(ra.report.pairs.size(), rb.report.pairs.size());
  for (std::size_t i = 0; i < ra.report.pairs.size(); ++i) {
    EXPECT_EQ(ra.report.pairs[i].first, rb.report.pairs[i].first);
    EXPECT_EQ(ra.report.pairs[i].second, rb.report.pairs[i].second);
  }
}

TEST(DecentralizedTest, AgreesWithCentralizedDetection) {
  // The decentralized protocol must flag exactly the pairs a centralized
  // detector flags on the union of all shards.
  DecentralizedReputationSystem sys(config(40));
  feed_collusion(sys, 40);

  // Build the equivalent centralized matrix: merge shard data.
  rating::RatingStore merged(40);
  for (int k = 0; k < 50; ++k) {
    merged.ingest(make(0, 1, Score::kPositive));
    merged.ingest(make(1, 0, Score::kPositive));
  }
  for (rating::NodeId r = 3; r < 40; ++r) {
    merged.ingest(make(r, 0, Score::kNegative));
    merged.ingest(make(r, 1, Score::kNegative));
    merged.ingest(make(r, 2, Score::kPositive));
  }
  std::vector<double> reps(40);
  for (rating::NodeId i = 0; i < 40; ++i)
    reps[i] =
        static_cast<double>(merged.window_totals(i).reputation_delta());
  const auto matrix = rating::RatingMatrix::build(merged, reps, 0.0);
  core::DetectorConfig dc = config(40).detector;
  const auto central = core::BasicCollusionDetector(dc).detect(matrix);
  const auto dist = sys.run_detection(DetectionMethod::kBasic);
  ASSERT_EQ(central.pairs.size(), dist.report.pairs.size());
  for (std::size_t i = 0; i < central.pairs.size(); ++i) {
    EXPECT_EQ(central.pairs[i].first, dist.report.pairs[i].first);
    EXPECT_EQ(central.pairs[i].second, dist.report.pairs[i].second);
  }
}

TEST(DecentralizedTest, CrossManagerChecksGenerateMessages) {
  DecentralizedReputationSystem sys(config(30));
  feed_collusion(sys, 30);
  const auto outcome = sys.run_detection(DetectionMethod::kOptimized);
  // Nodes 0 and 1 almost surely hash to different managers among 30;
  // either way the protocol reports consistent accounting.
  if (sys.manager_of(0) != sys.manager_of(1)) {
    EXPECT_GT(outcome.check_requests, 0u);
    EXPECT_EQ(outcome.check_requests, outcome.check_responses);
  } else {
    EXPECT_GT(outcome.local_checks, 0u);
  }
  EXPECT_GT(outcome.report.cost.messages + outcome.local_checks, 0u);
}

TEST(DecentralizedTest, WindowResetClearsDetectionInput) {
  DecentralizedReputationSystem sys(config(30));
  feed_collusion(sys, 30);
  sys.reset_window();
  const auto outcome = sys.run_detection(DetectionMethod::kBasic);
  EXPECT_TRUE(outcome.report.pairs.empty());
}

TEST(DecentralizedTest, RejectsOutOfRangeRatings) {
  DecentralizedReputationSystem sys(config(10));
  EXPECT_FALSE(sys.ingest(make(0, 10, Score::kPositive)));
  EXPECT_FALSE(sys.ingest(make(10, 0, Score::kPositive)));
}

}  // namespace
}  // namespace p2prep::managers
