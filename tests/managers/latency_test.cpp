#include "managers/latency.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace p2prep::managers {
namespace {

using rating::Rating;
using rating::Score;

DecentralizedReputationSystem make_system() {
  DecentralizedReputationSystem::Config c;
  c.num_nodes = 60;
  c.detector.positive_fraction_min = 0.8;
  c.detector.complement_fraction_max = 0.2;
  c.detector.frequency_min = 20;
  c.detector.high_rep_threshold = 0.0;
  DecentralizedReputationSystem sys(c);

  // Three colluding pairs spread across managers plus organic background.
  util::Rng rng(2026);
  for (const auto& [a, b] : {std::pair<rating::NodeId, rating::NodeId>{0, 1},
                             {10, 11},
                             {20, 21}}) {
    for (int k = 0; k < 40; ++k) {
      sys.ingest({a, b, Score::kPositive, 0});
      sys.ingest({b, a, Score::kPositive, 0});
    }
  }
  for (rating::NodeId rater = 0; rater < 60; ++rater) {
    for (int k = 0; k < 4; ++k) {
      auto ratee = static_cast<rating::NodeId>(rng.next_below(60));
      if (ratee == rater) ratee = static_cast<rating::NodeId>((ratee + 1) % 60);
      const bool colluder = ratee <= 1 || (ratee >= 10 && ratee <= 11) ||
                            (ratee >= 20 && ratee <= 21);
      sys.ingest({rater, ratee,
                  rng.chance(colluder ? 0.0 : 0.85) ? Score::kPositive
                                                    : Score::kNegative,
                  0});
    }
  }
  return sys;
}

TEST(LatencyTest, MeasurementDoesNotPerturbSystem) {
  auto sys = make_system();
  const auto latency = measure_detection_round(
      sys, DetectionMethod::kOptimized, LatencyModel{});
  EXPECT_TRUE(sys.detected().empty());  // suppress=false inside
  // The real detection afterwards still flags all pairs.
  const auto outcome = sys.run_detection(DetectionMethod::kOptimized);
  EXPECT_EQ(outcome.report.pairs.size(), 3u);
  (void)latency;
}

TEST(LatencyTest, CrossChecksProduceLatency) {
  auto sys = make_system();
  const auto latency = measure_detection_round(
      sys, DetectionMethod::kOptimized, LatencyModel{});
  // With 60 managers the pair endpoints almost surely live on different
  // managers; accounting must be internally consistent either way.
  if (latency.cross_checks > 0) {
    EXPECT_GT(latency.completion_ms, 0.0);
    EXPECT_GT(latency.avg_check_rtt_ms, LatencyModel{}.per_hop_ms);
    EXPECT_GE(latency.messages, latency.cross_checks * 2);  // >= 1 hop + resp
    EXPECT_EQ(latency.events, latency.cross_checks);
  } else {
    EXPECT_EQ(latency.completion_ms, 0.0);
  }
}

TEST(LatencyTest, PipelinedNoSlowerThanSequential) {
  auto sys = make_system();
  const LatencyModel model{.per_hop_ms = 25.0, .jitter_ms = 5.0, .seed = 9};
  const auto pipelined = measure_detection_round(
      sys, DetectionMethod::kOptimized, model, /*pipelined=*/true);
  const auto sequential = measure_detection_round(
      sys, DetectionMethod::kOptimized, model, /*pipelined=*/false);
  EXPECT_LE(pipelined.completion_ms, sequential.completion_ms + 1e-9);
  EXPECT_EQ(pipelined.cross_checks, sequential.cross_checks);
  EXPECT_EQ(pipelined.messages, sequential.messages);
}

TEST(LatencyTest, DeterministicForSeed) {
  auto sys1 = make_system();
  auto sys2 = make_system();
  const LatencyModel model{.per_hop_ms = 20.0, .jitter_ms = 10.0, .seed = 4};
  const auto a = measure_detection_round(sys1, DetectionMethod::kBasic, model);
  const auto b = measure_detection_round(sys2, DetectionMethod::kBasic, model);
  EXPECT_DOUBLE_EQ(a.completion_ms, b.completion_ms);
  EXPECT_EQ(a.messages, b.messages);
}

TEST(LatencyTest, ZeroJitterGivesExactHopMultiples) {
  auto sys = make_system();
  const LatencyModel model{.per_hop_ms = 10.0, .jitter_ms = 0.0, .seed = 1};
  const auto latency = measure_detection_round(
      sys, DetectionMethod::kOptimized, model);
  if (latency.cross_checks > 0) {
    // Every RTT is hops*10 + 10; the average is a multiple of 10.
    const double rem =
        std::fmod(latency.avg_check_rtt_ms * latency.cross_checks, 10.0);
    EXPECT_NEAR(std::min(rem, 10.0 - rem), 0.0, 1e-6);
  }
}

}  // namespace
}  // namespace p2prep::managers
