// Parallel-epoch differential suite: 100 seeded collusion traces replayed
// twice per (shard count, detector) cell — once with the parallel global
// epoch fully on (multithreaded sweep + detection/ingest overlap), once
// forced serial (parallel_epoch = epoch_overlap = false, today's
// single-threaded coordinator) — must produce byte-identical detection
// reports and identical published state. The parallel sweep partitions
// rows and merges per-range findings in range order, the accomplice
// exchange converges to the same flagged-set fixpoint as the serial walk,
// and overlapped ingest applies its buffered stream at the commit point,
// so no schedule may ever change a byte of output; these tests pin that
// across the randomized threshold/feature mix of trace_gen.h (which flips
// joint-complement, mutuality and accomplice flags per seed).
//
// The durable variant compares the on-disk artifacts raw: unlike the
// reshard suite (where WAL generations legitimately diverge), a parallel
// and a serial run of the same trace at the same width must leave
// byte-identical WAL and checkpoint files.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "service/service.h"
#include "tests/differential/trace_gen.h"

namespace p2prep::service {
namespace {

namespace fs = std::filesystem;
using rating::Rating;

constexpr const char* kDetectors[] = {"basic", "optimized", "ring", "group"};

ServiceConfig make_cfg(const testgen::Trace& t, std::uint64_t seed,
                       std::size_t shards, const std::string& detector,
                       bool parallel) {
  ServiceConfig cfg;
  cfg.num_nodes = t.n;
  cfg.num_shards = shards;
  cfg.epoch_ratings = 200;  // several natural cadence epochs per trace
  cfg.detector = detector;
  cfg.detector_config = testgen::config_for(seed);
  cfg.parallel_epoch = parallel;
  cfg.epoch_overlap = parallel;
  // A small explicit budget keeps the pool cheap while still exercising
  // multi-claimant merges; the forced-serial run never consults it.
  cfg.epoch_scan_threads = parallel ? 3 : 1;
  return cfg;
}

struct RunResult {
  std::string report_log;
  std::vector<double> reputations;
  std::vector<bool> suspected;

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

RunResult run_trace(const ServiceConfig& cfg, const std::vector<Rating>& load) {
  ReputationService svc(cfg);
  for (const Rating& r : load) EXPECT_TRUE(svc.ingest(r));
  svc.force_epoch();
  svc.drain();
  RunResult out;
  out.report_log = svc.report_log();
  const ServiceSnapshot snap = svc.snapshot();
  out.reputations.resize(cfg.num_nodes);
  out.suspected.resize(cfg.num_nodes);
  for (rating::NodeId i = 0; i < cfg.num_nodes; ++i) {
    out.reputations[i] = snap.reputation(i);
    out.suspected[i] = snap.suspected(i);
  }
  svc.stop();
  return out;
}

class ParallelEpochDifferentialTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelEpochDifferentialTest, HundredSeedsByteIdenticalToSerial) {
  const std::string detector = GetParam();
  // Each detector owns the seeds whose rotation lands on it, so the four
  // parameterized tests jointly cover all 100 seeds and ctest runs them
  // in parallel.
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    if (kDetectors[seed % 4] != detector) continue;
    const testgen::Trace t = testgen::make_trace(seed);
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{4}}) {
      if (detector == "group" && shards > 1) continue;  // 1-shard only
      const RunResult serial =
          run_trace(make_cfg(t, seed, shards, detector, false), t.ratings);
      const RunResult parallel =
          run_trace(make_cfg(t, seed, shards, detector, true), t.ratings);
      ASSERT_EQ(parallel.report_log, serial.report_log)
          << "seed " << seed << " shards " << shards;
      ASSERT_EQ(parallel.reputations, serial.reputations)
          << "seed " << seed << " shards " << shards;
      ASSERT_EQ(parallel.suspected, serial.suspected)
          << "seed " << seed << " shards " << shards;
      ASSERT_FALSE(serial.report_log.empty())
          << "seed " << seed << " shards " << shards;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Detectors, ParallelEpochDifferentialTest,
                         ::testing::Values(std::string("basic"),
                                           std::string("optimized"),
                                           std::string("ring"),
                                           std::string("group")),
                         [](const auto& info) { return info.param; });

// --- Durable variant: WAL and checkpoint files must match byte-for-byte ----

class ParallelEpochDurableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("p2prep_parallel_epoch_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::string slurp(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  /// Every shard-*.{wal,ckpt} file under dir_, sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> artifacts()
      const {
    std::vector<std::pair<std::string, std::string>> files;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("shard-", 0) == 0)
        files.emplace_back(name, slurp(entry.path()));
    }
    std::sort(files.begin(), files.end());
    return files;
  }

  fs::path dir_;
};

TEST_F(ParallelEpochDurableTest, WalAndCheckpointBytesMatchSerial) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::string detector = kDetectors[seed % 4];
    const std::size_t shards = detector == std::string("group") ? 1 : 4;
    const testgen::Trace t = testgen::make_trace(seed);

    ServiceConfig cfg = make_cfg(t, seed, shards, detector, false);
    cfg.wal_dir = dir_.string();
    // Every second epoch checkpoints, so the parallel run alternates
    // overlapped and fenced (checkpoint) epochs within one trace.
    cfg.checkpoint_every_epochs = 2;
    (void)run_trace(cfg, t.ratings);
    const auto serial_files = artifacts();
    fs::remove_all(dir_);

    cfg.parallel_epoch = true;
    cfg.epoch_overlap = true;
    cfg.epoch_scan_threads = 3;
    (void)run_trace(cfg, t.ratings);
    const auto parallel_files = artifacts();
    fs::remove_all(dir_);

    ASSERT_FALSE(serial_files.empty()) << "seed " << seed;
    ASSERT_EQ(parallel_files.size(), serial_files.size()) << "seed " << seed;
    for (std::size_t f = 0; f < serial_files.size(); ++f) {
      EXPECT_EQ(parallel_files[f].first, serial_files[f].first)
          << "seed " << seed;
      EXPECT_EQ(parallel_files[f].second == serial_files[f].second, true)
          << "seed " << seed << " file " << serial_files[f].first
          << " differs between parallel and serial runs";
    }
  }
}

}  // namespace
}  // namespace p2prep::service
