// Dense-oracle differential tests for the sparse matrix backend.
//
// The dense RatingMatrix charges exactly the paper's costs and has been
// validated against the paper's figures, so it serves as the oracle: for
// randomized rating traces (skewed organic traffic with colluding pairs
// injected per Fig. 3), the sparse backend must reproduce the dense
// matrix's state bit for bit — reputations, live-row flags, window totals,
// frequent-rater aggregates, every cell — and every detector (Basic,
// Optimized, Group) plus the incremental manager must emit byte-identical
// reports on top of it. Verdict-affecting sums are integer accumulations,
// so the sparse rows' unordered iteration cannot perturb them; these tests
// prove that end to end across 100 seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/basic_detector.h"
#include "core/group_detector.h"
#include "core/optimized_detector.h"
#include "managers/incremental.h"
#include "rating/matrix.h"
#include "rating/store.h"
#include "reputation/summation.h"
#include "service/shard.h"
#include "tests/differential/trace_gen.h"
#include "util/rng.h"

namespace p2prep {
namespace {

using rating::MatrixBackend;
using rating::NodeId;
using rating::PairStats;
using rating::Rating;
using rating::RatingMatrix;
using rating::RatingStore;
using rating::Score;

using testgen::Trace;
using testgen::config_for;
using testgen::make_trace;
using testgen::reputations_of;

void expect_matrices_identical(const RatingMatrix& dense,
                               const RatingMatrix& sparse) {
  ASSERT_EQ(dense.size(), sparse.size());
  EXPECT_EQ(dense.high_reputed_count(), sparse.high_reputed_count());
  EXPECT_EQ(dense.frequency_threshold(), sparse.frequency_threshold());
  for (NodeId i = 0; i < dense.size(); ++i) {
    EXPECT_EQ(dense.high_reputed(i), sparse.high_reputed(i)) << "row " << i;
    EXPECT_EQ(dense.global_reputation(i), sparse.global_reputation(i))
        << "row " << i;
    EXPECT_EQ(dense.totals(i), sparse.totals(i)) << "row " << i;
    EXPECT_EQ(dense.frequent_totals(i), sparse.frequent_totals(i))
        << "row " << i;
    EXPECT_EQ(dense.window_reputation(i), sparse.window_reputation(i))
        << "row " << i;
    for (NodeId j = 0; j < dense.size(); ++j) {
      EXPECT_EQ(dense.cell(i, j), sparse.cell(i, j))
          << "cell (" << i << ", " << j << ")";
      EXPECT_EQ(dense.cell_or_null(i, j) != nullptr,
                sparse.cell_or_null(i, j) != nullptr)
          << "cell (" << i << ", " << j << ")";
    }
    // The deterministic enumeration must agree element for element.
    std::vector<std::pair<NodeId, PairStats>> dense_cells;
    std::vector<std::pair<NodeId, PairStats>> sparse_cells;
    dense.for_each_nonzero_cell(i, [&](NodeId k, const PairStats& s) {
      dense_cells.emplace_back(k, s);
    });
    sparse.for_each_nonzero_cell(i, [&](NodeId k, const PairStats& s) {
      sparse_cells.emplace_back(k, s);
    });
    EXPECT_EQ(dense_cells, sparse_cells) << "row " << i;
  }
}

void expect_reports_identical(const core::DetectionReport& dense,
                              const core::DetectionReport& sparse) {
  ASSERT_EQ(dense.pairs.size(), sparse.pairs.size());
  for (std::size_t k = 0; k < dense.pairs.size(); ++k) {
    const core::PairEvidence& a = dense.pairs[k];
    const core::PairEvidence& b = sparse.pairs[k];
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
    EXPECT_EQ(a.ratings_to_first, b.ratings_to_first);
    EXPECT_EQ(a.ratings_to_second, b.ratings_to_second);
    EXPECT_EQ(a.positive_fraction_first, b.positive_fraction_first);
    EXPECT_EQ(a.positive_fraction_second, b.positive_fraction_second);
    EXPECT_EQ(a.complement_fraction_first, b.complement_fraction_first);
    EXPECT_EQ(a.complement_fraction_second, b.complement_fraction_second);
    EXPECT_EQ(a.global_rep_first, b.global_rep_first);
    EXPECT_EQ(a.global_rep_second, b.global_rep_second);
  }
  EXPECT_EQ(dense.colluders(), sparse.colluders());
  // The operator-facing text — evidence lines included — must be
  // byte-identical (costs are intentionally excluded from the report
  // text: the sparse backend's cheaper row scans are the one permitted
  // difference).
  EXPECT_EQ(service::format_epoch_report("diff", 1, dense),
            service::format_epoch_report("diff", 1, sparse));
}

void expect_group_reports_identical(const core::GroupDetectionReport& dense,
                                    const core::GroupDetectionReport& sparse) {
  ASSERT_EQ(dense.groups.size(), sparse.groups.size());
  for (std::size_t g = 0; g < dense.groups.size(); ++g) {
    const core::CollusionGroup& a = dense.groups[g];
    const core::CollusionGroup& b = sparse.groups[g];
    EXPECT_EQ(a.members, b.members);
    EXPECT_EQ(a.edges, b.edges);
    EXPECT_EQ(a.outside_positive_fraction, b.outside_positive_fraction);
    EXPECT_EQ(a.outside_ratings, b.outside_ratings);
    EXPECT_EQ(a.inside_ratings, b.inside_ratings);
    EXPECT_EQ(a.to_string(), b.to_string());
  }
  EXPECT_EQ(dense.colluders(), sparse.colluders());
}

class MatrixBackendDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatrixBackendDifferentialTest, SnapshotBuildMatchesDenseOracle) {
  const std::uint64_t seed = GetParam();
  const Trace trace = make_trace(seed);
  RatingStore store(trace.n);
  for (const Rating& r : trace.ratings) ASSERT_TRUE(store.ingest(r));
  const std::vector<double> reps = reputations_of(store);
  const core::DetectorConfig cfg = config_for(seed);

  const RatingMatrix dense =
      RatingMatrix::build(store, reps, cfg.high_rep_threshold,
                          cfg.frequency_min, MatrixBackend::kDense);
  const RatingMatrix sparse =
      RatingMatrix::build(store, reps, cfg.high_rep_threshold,
                          cfg.frequency_min, MatrixBackend::kSparse);
  EXPECT_EQ(dense.backend(), MatrixBackend::kDense);
  EXPECT_EQ(sparse.backend(), MatrixBackend::kSparse);
  expect_matrices_identical(dense, sparse);

  const core::BasicCollusionDetector basic(cfg);
  const core::OptimizedCollusionDetector optimized(cfg);
  const core::GroupCollusionDetector group(cfg);
  expect_reports_identical(basic.detect(dense), basic.detect(sparse));
  expect_reports_identical(optimized.detect(dense), optimized.detect(sparse));
  expect_group_reports_identical(group.detect(dense), group.detect(sparse));

  // Without precomputed frequent aggregates the Optimized joint-complement
  // path falls back to a full row recompute — the other sparse row-scan
  // code path; it must agree with the dense oracle too.
  const RatingMatrix dense_recompute = RatingMatrix::build(
      store, reps, cfg.high_rep_threshold, 0, MatrixBackend::kDense);
  const RatingMatrix sparse_recompute = RatingMatrix::build(
      store, reps, cfg.high_rep_threshold, 0, MatrixBackend::kSparse);
  expect_reports_identical(optimized.detect(dense_recompute),
                           optimized.detect(sparse_recompute));
}

TEST_P(MatrixBackendDifferentialTest, IncrementalManagerMatchesDenseOracle) {
  const std::uint64_t seed = GetParam();
  const Trace trace = make_trace(seed);
  const core::DetectorConfig cfg = config_for(seed);

  reputation::SummationEngine dense_engine(trace.n, /*normalize=*/false);
  reputation::SummationEngine sparse_engine(trace.n, /*normalize=*/false);
  managers::IncrementalCentralizedManager dense_mgr(
      trace.n, dense_engine, cfg, MatrixBackend::kDense);
  managers::IncrementalCentralizedManager sparse_mgr(
      trace.n, sparse_engine, cfg, MatrixBackend::kSparse);
  const core::OptimizedCollusionDetector detector(cfg);

  const auto run_epoch = [&](managers::IncrementalCentralizedManager& mgr,
                             std::uint64_t epoch) {
    mgr.update_reputations();
    const core::DetectionReport report = mgr.run_detection(
        detector, managers::CentralizedManager::SuppressionMode::kReset);
    return service::format_epoch_report("diff", epoch, report);
  };

  // Window 1: first half of the stream.
  const std::size_t half = trace.ratings.size() / 2;
  for (std::size_t k = 0; k < half; ++k) {
    ASSERT_TRUE(dense_mgr.ingest(trace.ratings[k]));
    ASSERT_TRUE(sparse_mgr.ingest(trace.ratings[k]));
  }
  EXPECT_EQ(run_epoch(dense_mgr, 1), run_epoch(sparse_mgr, 1));
  expect_matrices_identical(dense_mgr.matrix(), sparse_mgr.matrix());

  // Window 2: suppression from window 1 carries over identically.
  dense_mgr.reset_window();
  sparse_mgr.reset_window();
  for (std::size_t k = half; k < trace.ratings.size(); ++k) {
    ASSERT_TRUE(dense_mgr.ingest(trace.ratings[k]));
    ASSERT_TRUE(sparse_mgr.ingest(trace.ratings[k]));
  }
  EXPECT_EQ(run_epoch(dense_mgr, 2), run_epoch(sparse_mgr, 2));
  expect_matrices_identical(dense_mgr.matrix(), sparse_mgr.matrix());

  std::vector<NodeId> dense_detected(dense_mgr.detected().begin(),
                                     dense_mgr.detected().end());
  std::vector<NodeId> sparse_detected(sparse_mgr.detected().begin(),
                                      sparse_mgr.detected().end());
  std::sort(dense_detected.begin(), dense_detected.end());
  std::sort(sparse_detected.begin(), sparse_detected.end());
  EXPECT_EQ(dense_detected, sparse_detected);
  for (NodeId i = 0; i < trace.n; ++i) {
    EXPECT_EQ(dense_engine.detection_reputation(i),
              sparse_engine.detection_reputation(i))
        << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixBackendDifferentialTest,
                         ::testing::Range<std::uint64_t>(0, 100));

// Footprint regression: a 10k-node matrix at 1% density must cost the
// sparse backend less than 5% of what the dense backend would allocate.
// The dense side is the analytic oracle (dense_footprint_bytes) —
// actually allocating it would be ~1.2 GB.
TEST(MatrixBackendMemoryTest, Sparse10kOnePercentUnderFivePercentOfDense) {
  constexpr std::size_t kNodes = 10000;
  constexpr std::size_t kCells = kNodes * kNodes / 100;
  RatingMatrix sparse(kNodes, MatrixBackend::kSparse);
  util::Rng rng(7);
  for (std::size_t c = 0; c < kCells; ++c) {
    const auto ratee = static_cast<NodeId>(rng.next_below(kNodes));
    auto rater = static_cast<NodeId>(rng.next_below(kNodes));
    if (rater == ratee) rater = static_cast<NodeId>((rater + 1) % kNodes);
    sparse.add_rating(ratee, rater, Score::kPositive);
  }
  const std::size_t dense_bytes = RatingMatrix::dense_footprint_bytes(kNodes);
  EXPECT_LT(sparse.approx_memory_bytes(), dense_bytes / 20)
      << "sparse bytes: " << sparse.approx_memory_bytes()
      << ", dense oracle: " << dense_bytes;
}

}  // namespace
}  // namespace p2prep
