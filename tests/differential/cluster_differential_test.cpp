// Decentralized-manager differential suite: 100 seeded collusion traces
// replayed twice — once through a ReputationService whose shards are
// backed by a real 3-manager M=2 cluster on loopback sockets
// (ServiceConfig::cluster), once through the plain single-process global
// scope service at the same shard count — must produce byte-identical
// detection reports and identical published state. The cluster path
// forwards every rating over the wire, pulls each range's canonical
// checkpoint bytes back at the epoch barrier, detects locally over the
// reloaded copies and pushes the verdicts cluster-wide; none of that may
// change a byte of output. Seeds are split across four parameterized
// lanes so ctest runs them in parallel.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/backend.h"
#include "cluster/manager_node.h"
#include "service/service.h"
#include "tests/differential/trace_gen.h"

namespace p2prep::service {
namespace {

using rating::Rating;

std::uint16_t reserve_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

constexpr std::size_t kRingSize = 3;
constexpr std::uint32_t kReplication = 2;

ServiceConfig make_cfg(const testgen::Trace& t, std::uint64_t seed) {
  ServiceConfig cfg;
  cfg.num_nodes = t.n;
  cfg.num_shards = kRingSize;
  cfg.epoch_ratings = 300;  // a few natural cadence epochs per trace
  cfg.detector = (seed % 2) == 0 ? "optimized" : "basic";
  cfg.detector_config = testgen::config_for(seed);
  // The cluster mode forces epoch_overlap off (the pulled state IS the
  // pre-epoch stream); the baseline matches so both runs use the same
  // epoch shape.
  cfg.epoch_overlap = false;
  return cfg;
}

struct RunResult {
  std::string report_log;
  std::vector<double> reputations;
  std::vector<bool> suspected;

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

RunResult run_trace(const ServiceConfig& cfg, const std::vector<Rating>& load) {
  ReputationService svc(cfg);
  for (const Rating& r : load) EXPECT_TRUE(svc.ingest(r));
  svc.force_epoch();
  svc.drain();
  RunResult out;
  out.report_log = svc.report_log();
  const ServiceSnapshot snap = svc.snapshot();
  out.reputations.resize(cfg.num_nodes);
  out.suspected.resize(cfg.num_nodes);
  for (rating::NodeId i = 0; i < cfg.num_nodes; ++i) {
    out.reputations[i] = snap.reputation(i);
    out.suspected[i] = snap.suspected(i);
  }
  svc.stop();
  return out;
}

/// Replays the trace through a fresh in-process 3-manager cluster and a
/// service in decentralized-manager mode.
RunResult run_clustered(const testgen::Trace& t, std::uint64_t seed) {
  std::vector<cluster::ManagerEndpoint> ring;
  for (std::size_t i = 0; i < kRingSize; ++i)
    ring.push_back({"127.0.0.1", reserve_port()});

  std::vector<std::unique_ptr<cluster::ManagerNode>> nodes;
  for (std::size_t i = 0; i < kRingSize; ++i) {
    cluster::ManagerNodeConfig mc;
    mc.index = i;
    mc.ring = ring;
    mc.replication = kReplication;
    mc.service = make_cfg(t, seed);  // same detector/suppression settings
    nodes.push_back(std::make_unique<cluster::ManagerNode>(mc));
    nodes.back()->start();
  }

  cluster::ClusterBackendConfig bc;
  bc.ring = ring;
  bc.replication = kReplication;
  bc.num_nodes = t.n;
  bc.connect_timeout_ms = 2000;
  bc.request_timeout_ms = 10000;

  ServiceConfig cfg = make_cfg(t, seed);
  cfg.cluster = cluster::make_cluster_backend(bc);
  const RunResult out = run_trace(cfg, t.ratings);
  for (auto& n : nodes) n->stop();
  return out;
}

class ClusterDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(ClusterDifferentialTest, SeedsByteIdenticalToSingleProcess) {
  const int lane = GetParam();
  // The four lanes jointly cover seeds 1..100 (seed % 4 picks the lane),
  // so ctest runs the full hundred in parallel.
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    if (static_cast<int>(seed % 4) != lane) continue;
    const testgen::Trace t = testgen::make_trace(seed);
    const RunResult local = run_trace(make_cfg(t, seed), t.ratings);
    const RunResult clustered = run_clustered(t, seed);
    ASSERT_EQ(clustered.report_log, local.report_log) << "seed " << seed;
    ASSERT_EQ(clustered.reputations, local.reputations) << "seed " << seed;
    ASSERT_EQ(clustered.suspected, local.suspected) << "seed " << seed;
    ASSERT_FALSE(local.report_log.empty()) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Lanes, ClusterDifferentialTest,
                         ::testing::Values(0, 1, 2, 3),
                         [](const auto& info) {
                           return "lane" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace p2prep::service
