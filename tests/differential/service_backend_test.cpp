// Dense-oracle differential tests at the service layer: the same rating
// stream replayed through ReputationService with dense and sparse shard
// matrices must produce byte-identical epoch detection reports, published
// reputations and suspected sets — at 1 and 4 shards, in both epoch
// scopes, and across WAL crash-recovery. Because service.meta records the
// topology but deliberately NOT the matrix backend, a durable directory
// written under one backend must recover under the other; that contract
// is tested here too. The ServiceBackendDifferential suites run under
// TSan alongside ServiceConcurrency (tools/run_static_analysis.sh) so the
// sparse backend's concurrent epoch path is race-checked as well.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "rating/matrix.h"
#include "service/service.h"
#include "util/rng.h"

namespace p2prep::service {
namespace {

namespace fs = std::filesystem;
using rating::MatrixBackend;
using rating::NodeId;
using rating::Rating;
using rating::Score;

constexpr std::size_t kN = 60;

/// Colluding pairs (0,1) and (2,3) boosting each other, plus seeded organic
/// traffic that rates the colluders mostly negatively.
std::vector<Rating> backend_workload(std::uint64_t seed) {
  std::vector<Rating> out;
  util::Rng rng(seed);
  rating::Tick t = 0;
  for (int k = 0; k < 45; ++k) {
    out.push_back({0, 1, Score::kPositive, t++});
    out.push_back({1, 0, Score::kPositive, t++});
    out.push_back({2, 3, Score::kPositive, t++});
    out.push_back({3, 2, Score::kPositive, t++});
  }
  for (NodeId rater = 0; rater < kN; ++rater) {
    for (int k = 0; k < 6; ++k) {
      auto ratee = static_cast<NodeId>(rng.next_below(kN));
      if (ratee == rater) ratee = static_cast<NodeId>((ratee + 1) % kN);
      out.push_back({rater, ratee,
                     rng.chance(ratee < 4 ? 0.05 : 0.85) ? Score::kPositive
                                                         : Score::kNegative,
                     t++});
    }
  }
  return out;
}

ServiceConfig backend_config(MatrixBackend backend, std::size_t shards) {
  ServiceConfig cfg;
  cfg.num_nodes = kN;
  cfg.num_shards = shards;
  cfg.epoch_ratings = 1u << 30;  // epochs driven by force_epoch()
  cfg.matrix_backend = backend;
  cfg.detector_config.positive_fraction_min = 0.8;
  cfg.detector_config.complement_fraction_max = 0.2;
  cfg.detector_config.frequency_min = 20;
  cfg.detector_config.high_rep_threshold = 0.05;
  return cfg;
}

struct RunResult {
  std::string report_log;
  std::vector<double> reputations;
  std::vector<bool> suspected;
  std::uint64_t detections_total = 0;
  std::uint64_t matrix_bytes = 0;

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

RunResult capture(const ReputationService& svc) {
  RunResult out;
  out.report_log = svc.report_log();
  const ServiceSnapshot snap = svc.snapshot();
  out.reputations.resize(kN);
  out.suspected.resize(kN);
  for (NodeId i = 0; i < kN; ++i) {
    out.reputations[i] = snap.reputation(i);
    out.suspected[i] = snap.suspected(i);
  }
  const ServiceMetrics m = svc.metrics();
  out.detections_total = m.detections_total;
  out.matrix_bytes = m.matrix_bytes;
  return out;
}

/// Replays the workload with two force_epoch() detection points and
/// captures the observable end state.
RunResult replay(const ServiceConfig& cfg, const std::vector<Rating>& load) {
  ReputationService svc(cfg);
  const std::size_t half = load.size() / 2;
  for (std::size_t k = 0; k < half; ++k) EXPECT_TRUE(svc.ingest(load[k]));
  svc.force_epoch();
  svc.drain();
  for (std::size_t k = half; k < load.size(); ++k)
    EXPECT_TRUE(svc.ingest(load[k]));
  svc.force_epoch();
  svc.drain();
  RunResult out = capture(svc);
  svc.stop();
  return out;
}

/// Everything except the footprint must match across backends; the
/// footprint is the one intended difference (sparse strictly smaller once
/// any ratings landed).
void expect_equivalent(const RunResult& dense, const RunResult& sparse) {
  EXPECT_EQ(dense.report_log, sparse.report_log);
  EXPECT_EQ(dense.reputations, sparse.reputations);
  EXPECT_EQ(dense.suspected, sparse.suspected);
  EXPECT_EQ(dense.detections_total, sparse.detections_total);
  EXPECT_LT(sparse.matrix_bytes, dense.matrix_bytes);
}

TEST(ServiceBackendDifferentialTest, GlobalScopeIdenticalAtOneShard) {
  const auto load = backend_workload(31);
  expect_equivalent(replay(backend_config(MatrixBackend::kDense, 1), load),
                    replay(backend_config(MatrixBackend::kSparse, 1), load));
}

TEST(ServiceBackendDifferentialTest, GlobalScopeIdenticalAtFourShards) {
  const auto load = backend_workload(32);
  expect_equivalent(replay(backend_config(MatrixBackend::kDense, 4), load),
                    replay(backend_config(MatrixBackend::kSparse, 4), load));
}

TEST(ServiceBackendDifferentialTest, PerShardScopeIdenticalAtFourShards) {
  const auto load = backend_workload(33);
  ServiceConfig dense_cfg = backend_config(MatrixBackend::kDense, 4);
  dense_cfg.epoch_scope = EpochScope::kPerShard;
  dense_cfg.epoch_ratings = 40;  // natural per-shard cadence epochs
  ServiceConfig sparse_cfg = dense_cfg;
  sparse_cfg.matrix_backend = MatrixBackend::kSparse;

  const RunResult dense = replay(dense_cfg, load);
  const RunResult sparse = replay(sparse_cfg, load);
  EXPECT_FALSE(dense.report_log.empty());
  expect_equivalent(dense, sparse);
}

class ServiceBackendDifferentialRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("p2prep_backend_diff_" + std::string(::testing::UnitTest::
                                                     GetInstance()
                                                         ->current_test_info()
                                                         ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] ServiceConfig durable(MatrixBackend backend) const {
    ServiceConfig cfg = backend_config(backend, 3);
    cfg.wal_dir = dir_.string();
    return cfg;
  }

  /// Feeds half the stream, runs one epoch, crashes; returns the
  /// pre-crash observable state.
  RunResult run_until_crash(const ServiceConfig& cfg,
                            const std::vector<Rating>& load) {
    ReputationService svc(cfg);
    for (std::size_t k = 0; k < load.size() / 2; ++k)
      EXPECT_TRUE(svc.ingest(load[k]));
    svc.force_epoch();
    svc.drain();
    RunResult out = capture(svc);
    svc.crash_stop();
    return out;
  }

  /// Recovers under `cfg`, finishes the stream with a second epoch and
  /// returns the end state.
  RunResult recover_and_finish(const ServiceConfig& cfg,
                               const std::vector<Rating>& load,
                               const RunResult& before_crash) {
    ReputationService svc(cfg);
    EXPECT_TRUE(svc.recovered());
    // WAL replay must regenerate epoch 1's report byte-for-byte.
    EXPECT_EQ(svc.report_log(), before_crash.report_log);
    for (std::size_t k = load.size() / 2; k < load.size(); ++k)
      EXPECT_TRUE(svc.ingest(load[k]));
    svc.force_epoch();
    svc.drain();
    RunResult out = capture(svc);
    svc.stop();
    return out;
  }

  fs::path dir_;
};

TEST_F(ServiceBackendDifferentialRecoveryTest,
       SparseRecoveryMatchesDenseRecovery) {
  const auto load = backend_workload(41);
  // Dense write + dense recovery.
  const RunResult dense_crash =
      run_until_crash(durable(MatrixBackend::kDense), load);
  const RunResult dense_end =
      recover_and_finish(durable(MatrixBackend::kDense), load, dense_crash);
  fs::remove_all(dir_);
  // Sparse write + sparse recovery over the same stream.
  const RunResult sparse_crash =
      run_until_crash(durable(MatrixBackend::kSparse), load);
  const RunResult sparse_end =
      recover_and_finish(durable(MatrixBackend::kSparse), load, sparse_crash);
  expect_equivalent(dense_crash, sparse_crash);
  expect_equivalent(dense_end, sparse_end);
}

TEST_F(ServiceBackendDifferentialRecoveryTest,
       DenseWalRecoversUnderSparseBackend) {
  const auto load = backend_workload(42);
  const RunResult crash = run_until_crash(durable(MatrixBackend::kDense), load);
  // The durable directory does not record the backend: a dense-written WAL
  // recovers under a sparse config with identical observable state.
  const RunResult end =
      recover_and_finish(durable(MatrixBackend::kSparse), load, crash);
  EXPECT_EQ(end.suspected[0], true);
  EXPECT_EQ(end.suspected[1], true);
}

TEST_F(ServiceBackendDifferentialRecoveryTest,
       SparseCheckpointRecoversUnderDenseBackend) {
  const auto load = backend_workload(43);
  // Checkpoint every epoch so recovery exercises the checkpoint-cell
  // restore path (for_each_nonzero_cell ordering) rather than pure replay.
  ServiceConfig sparse_cfg = durable(MatrixBackend::kSparse);
  sparse_cfg.checkpoint_every_epochs = 1;
  ServiceConfig dense_cfg = durable(MatrixBackend::kDense);
  dense_cfg.checkpoint_every_epochs = 1;

  {
    ReputationService svc(sparse_cfg);
    for (std::size_t k = 0; k < load.size() / 2; ++k)
      EXPECT_TRUE(svc.ingest(load[k]));
    svc.force_epoch();
    svc.drain();
    EXPECT_GT(svc.metrics().checkpoints_written, 0u);
    svc.crash_stop();
  }
  ReputationService svc(dense_cfg);
  ASSERT_TRUE(svc.recovered());
  for (std::size_t k = load.size() / 2; k < load.size(); ++k)
    EXPECT_TRUE(svc.ingest(load[k]));
  svc.force_epoch();
  svc.drain();
  const RunResult end = capture(svc);
  svc.stop();

  // Reference: the same stream uninterrupted on the dense backend.
  fs::remove_all(dir_);
  ReputationService ref(dense_cfg);
  for (std::size_t k = 0; k < load.size() / 2; ++k)
    EXPECT_TRUE(ref.ingest(load[k]));
  ref.force_epoch();
  ref.drain();
  for (std::size_t k = load.size() / 2; k < load.size(); ++k)
    EXPECT_TRUE(ref.ingest(load[k]));
  ref.force_epoch();
  ref.drain();
  const RunResult expected = capture(ref);
  ref.stop();

  EXPECT_EQ(end.reputations, expected.reputations);
  EXPECT_EQ(end.suspected, expected.suspected);
}

// TSan workload: the sparse backend's epoch path (matrix mutation, view
// publication, footprint-gauge refresh) under concurrent producers and a
// snapshot/metrics poller. Runs in the thread-sanitizer CI stage via the
// ServiceBackendDifferential filter.
TEST(ServiceBackendDifferentialTest, SparsePerShardEpochsUnderContention) {
  ServiceConfig cfg = backend_config(MatrixBackend::kSparse, 4);
  cfg.epoch_scope = EpochScope::kPerShard;
  cfg.epoch_ratings = 64;
  cfg.queue_capacity = 64;
  cfg.record_reports = false;
  ReputationService svc(cfg);

  std::atomic<bool> done{false};
  std::thread producer([&svc] {
    util::Rng rng(55);
    for (int k = 0; k < 3000; ++k) {
      const auto rater = static_cast<NodeId>(rng.next_below(kN));
      auto ratee = static_cast<NodeId>(rng.next_below(kN));
      if (ratee == rater) ratee = static_cast<NodeId>((ratee + 1) % kN);
      svc.ingest({rater, ratee,
                  rng.chance(0.8) ? Score::kPositive : Score::kNegative,
                  static_cast<rating::Tick>(k)});
    }
  });
  std::thread poller([&svc, &done] {
    while (!done.load()) {
      (void)svc.snapshot();
      (void)svc.metrics().matrix_bytes;
      std::this_thread::yield();
    }
  });
  producer.join();
  done.store(true);
  poller.join();
  svc.force_epoch();
  svc.drain();

  const ServiceMetrics m = svc.metrics();
  EXPECT_GT(m.epochs_completed, 0u);
  EXPECT_GT(m.matrix_bytes, 0u);  // gauge refreshed at epoch boundaries
  EXPECT_EQ(m.ratings_applied + m.ratings_dropped, m.ratings_accepted);
  svc.stop();
}

}  // namespace
}  // namespace p2prep::service
