// Shared randomized collusion workloads for the differential suites
// (tests/differential/, tests/detect/). The traces bury colluding pairs
// exchanging frequent positives (the Fig. 3 signature) in zipf-skewed
// organic traffic; the per-seed DetectorConfig sweeps the joint-complement,
// mutuality and accomplice feature mix so 100 seeds cover every verdict
// code path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/config.h"
#include "rating/store.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace p2prep::testgen {

struct Trace {
  std::size_t n = 0;
  std::size_t colluders = 0;  ///< Nodes 0..colluders-1 form boosting pairs.
  std::vector<rating::Rating> ratings;
};

/// Randomized workload: 1-3 colluding pairs exchanging frequent positives
/// (the Fig. 3 signature), buried in zipf-skewed organic traffic where
/// colluders collect mostly-negative ratings from everyone else (C2) and
/// honest nodes collect mostly-positive ones.
inline Trace make_trace(std::uint64_t seed) {
  util::Rng rng(seed);
  Trace t;
  t.n = 24 + rng.next_below(25);
  const std::size_t pairs = 1 + rng.next_below(3);
  t.colluders = 2 * pairs;
  rating::Tick tick = 0;
  for (std::size_t p = 0; p < pairs; ++p) {
    const auto a = static_cast<rating::NodeId>(2 * p);
    const auto b = static_cast<rating::NodeId>(2 * p + 1);
    const std::size_t boosts = 25 + rng.next_below(31);
    for (std::size_t k = 0; k < boosts; ++k) {
      t.ratings.push_back({a, b, rating::Score::kPositive, tick++});
      t.ratings.push_back({b, a, rating::Score::kPositive, tick++});
    }
  }
  const std::size_t organic = 600 + rng.next_below(1001);
  for (std::size_t e = 0; e < organic; ++e) {
    const auto rater = static_cast<rating::NodeId>(util::zipf(rng, t.n));
    auto ratee = static_cast<rating::NodeId>(util::zipf(rng, t.n, 0.8));
    if (ratee == rater)
      ratee = static_cast<rating::NodeId>((ratee + 1) % t.n);
    const bool victim_is_colluder =
        ratee < t.colluders && rater >= t.colluders;
    rating::Score score;
    if (rng.chance(victim_is_colluder ? 0.08 : 0.85))
      score = rating::Score::kPositive;
    else if (rng.chance(0.1))
      score = rating::Score::kNeutral;
    else
      score = rating::Score::kNegative;
    t.ratings.push_back({rater, ratee, score, tick++});
  }
  return t;
}

/// Host reputations derived deterministically from the store's lifetime
/// summation values, normalized to [0, 1]. Colluding pairs land high (C1).
inline std::vector<double> reputations_of(const rating::RatingStore& store) {
  std::int64_t max_rep = 1;
  for (rating::NodeId i = 0; i < store.num_nodes(); ++i)
    max_rep = std::max(max_rep, store.reputation(i));
  std::vector<double> reps(store.num_nodes(), 0.0);
  for (rating::NodeId i = 0; i < store.num_nodes(); ++i) {
    const std::int64_t r = store.reputation(i);
    if (r > 0)
      reps[i] = static_cast<double>(r) / static_cast<double>(max_rep);
  }
  return reps;
}

/// Per-seed threshold/feature mix so the differential coverage spans the
/// joint-complement, mutuality and accomplice code paths.
inline core::DetectorConfig config_for(std::uint64_t seed) {
  core::DetectorConfig cfg;
  cfg.positive_fraction_min = 0.80;
  cfg.complement_fraction_max = 0.25;
  cfg.frequency_min = 10;
  cfg.high_rep_threshold = 0.05;
  cfg.joint_complement = (seed % 2) == 0;
  cfg.require_mutual = (seed % 3) != 0;
  cfg.flag_accomplices = (seed % 4) != 0;
  return cfg;
}

}  // namespace p2prep::testgen
