// Reshard differential suite: 100 seeded collusion traces replayed twice
// — once through a service that resizes 1 -> 2 -> 4 -> 3 mid-stream, once
// through a never-resized 3-shard service — must produce byte-identical
// epoch detection reports and identical published state. The detection
// pipeline is placement-independent (the global epoch sees every shard's
// matrix through the live ShardMap), so an operator growing or shrinking
// the fleet never changes what the system reports; these tests pin that
// contract across the randomized threshold/feature mix of trace_gen.h.
//
// The durable variant also compares the final per-shard checkpoints
// field-wise: the recoverable state (engine sums, window cells, verdict
// sets) must be identical, while bookkeeping fields that legitimately
// depend on the path taken (WAL generation, per-shard applied counts)
// are excluded.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "service/service.h"
#include "service/wal.h"
#include "tests/differential/trace_gen.h"

namespace p2prep::service {
namespace {

namespace fs = std::filesystem;
using rating::Rating;

ServiceConfig config_for_trace(const testgen::Trace& t, std::uint64_t seed,
                               std::size_t shards) {
  ServiceConfig cfg;
  cfg.num_nodes = t.n;
  cfg.num_shards = shards;
  cfg.epoch_ratings = 200;  // several natural cadence epochs per trace
  cfg.detector_config = testgen::config_for(seed);
  // config_for enables flag_accomplices on most seeds; it stays on here —
  // the cross-shard flagged-set exchange makes propagation map-agnostic,
  // so resized and never-resized runs must agree with it enabled too.
  return cfg;
}

struct RunResult {
  std::string report_log;
  std::vector<double> reputations;
  std::vector<bool> suspected;

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

RunResult capture(const ReputationService& svc, std::size_t n) {
  RunResult out;
  out.report_log = svc.report_log();
  const ServiceSnapshot snap = svc.snapshot();
  out.reputations.resize(n);
  out.suspected.resize(n);
  for (rating::NodeId i = 0; i < n; ++i) {
    out.reputations[i] = snap.reputation(i);
    out.suspected[i] = snap.suspected(i);
  }
  return out;
}

/// Replays the trace, resizing 1 -> 2 -> 4 -> 3 at the quarter marks.
RunResult resized_run(ServiceConfig cfg, const std::vector<Rating>& load) {
  cfg.num_shards = 1;
  ReputationService svc(cfg);
  const std::size_t q = load.size() / 4;
  const std::size_t widths[3] = {2, 4, 3};
  std::size_t k = 0;
  for (std::size_t phase = 0; phase < 3; ++phase) {
    for (; k < (phase + 1) * q; ++k) EXPECT_TRUE(svc.ingest(load[k]));
    const ResizeStats rs = svc.resize(widths[phase]);
    EXPECT_EQ(rs.num_shards, widths[phase]);
  }
  for (; k < load.size(); ++k) EXPECT_TRUE(svc.ingest(load[k]));
  svc.force_epoch();
  svc.drain();
  RunResult out = capture(svc, cfg.num_nodes);
  svc.stop();
  return out;
}

RunResult static_run(ServiceConfig cfg, const std::vector<Rating>& load) {
  ReputationService svc(cfg);
  for (const Rating& r : load) EXPECT_TRUE(svc.ingest(r));
  svc.force_epoch();
  svc.drain();
  RunResult out = capture(svc, cfg.num_nodes);
  svc.stop();
  return out;
}

TEST(ReshardDifferentialTest, HundredSeedsByteIdenticalAcrossResizes) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const testgen::Trace t = testgen::make_trace(seed);
    const ServiceConfig cfg = config_for_trace(t, seed, 3);
    const RunResult expected = static_run(cfg, t.ratings);
    const RunResult actual = resized_run(cfg, t.ratings);
    ASSERT_EQ(actual.report_log, expected.report_log) << "seed " << seed;
    ASSERT_EQ(actual.reputations, expected.reputations) << "seed " << seed;
    ASSERT_EQ(actual.suspected, expected.suspected) << "seed " << seed;
  }
}

// --- Durable variant: checkpoints must match field-wise --------------------

class ReshardDifferentialCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("p2prep_reshard_diff_" + std::string(::testing::UnitTest::
                                                     GetInstance()
                                                         ->current_test_info()
                                                         ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string ckpt_path(std::size_t shard) const {
    char name[32];
    std::snprintf(name, sizeof(name), "shard-%03zu.ckpt", shard);
    return (dir_ / name).string();
  }

  /// The recoverable state, minus path-dependent bookkeeping: WAL
  /// generation and applied counts depend on how many rotations and which
  /// records each shard instance saw, which a resize legitimately changes.
  static void expect_state_equal(const ShardCheckpoint& a,
                                 const ShardCheckpoint& b,
                                 std::uint64_t seed, std::size_t shard) {
    EXPECT_EQ(a.engine_blob, b.engine_blob)
        << "seed " << seed << " shard " << shard;
    EXPECT_EQ(a.suppressed, b.suppressed)
        << "seed " << seed << " shard " << shard;
    EXPECT_EQ(a.detected, b.detected)
        << "seed " << seed << " shard " << shard;
    ASSERT_EQ(a.cells.size(), b.cells.size())
        << "seed " << seed << " shard " << shard;
    for (std::size_t c = 0; c < a.cells.size(); ++c) {
      EXPECT_EQ(a.cells[c].ratee, b.cells[c].ratee);
      EXPECT_EQ(a.cells[c].rater, b.cells[c].rater);
      EXPECT_EQ(a.cells[c].stats.positive, b.cells[c].stats.positive);
      EXPECT_EQ(a.cells[c].stats.negative, b.cells[c].stats.negative);
      EXPECT_EQ(a.cells[c].stats.total, b.cells[c].stats.total);
    }
  }

  fs::path dir_;
};

TEST_F(ReshardDifferentialCheckpointTest, FinalCheckpointsMatchFieldWise) {
  // A handful of seeds with disk I/O; the in-memory loop above covers the
  // full hundred.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const testgen::Trace t = testgen::make_trace(seed);
    ServiceConfig cfg = config_for_trace(t, seed, 3);
    cfg.wal_dir = dir_.string();
    cfg.checkpoint_every_epochs = 1;

    std::vector<ShardCheckpoint> resized(3), fixed(3);
    (void)resized_run(cfg, t.ratings);
    for (std::size_t s = 0; s < 3; ++s) {
      const auto loaded = read_checkpoint(ckpt_path(s));
      ASSERT_TRUE(loaded.has_value()) << "seed " << seed << " shard " << s;
      resized[s] = *loaded;
    }
    fs::remove_all(dir_);

    (void)static_run(cfg, t.ratings);
    for (std::size_t s = 0; s < 3; ++s) {
      const auto loaded = read_checkpoint(ckpt_path(s));
      ASSERT_TRUE(loaded.has_value()) << "seed " << seed << " shard " << s;
      fixed[s] = *loaded;
    }
    fs::remove_all(dir_);

    for (std::size_t s = 0; s < 3; ++s)
      expect_state_equal(resized[s], fixed[s], seed, s);
  }
}

}  // namespace
}  // namespace p2prep::service
