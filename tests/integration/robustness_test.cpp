// Robustness / fuzz-style tests: malformed inputs must fail cleanly, and
// the detectors must behave sanely on arbitrary (adversarial) matrices.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/basic_detector.h"
#include "core/group_detector.h"
#include "core/optimized_detector.h"
#include "dht/chord.h"
#include "rating/matrix.h"
#include "trace/io.h"
#include "util/rng.h"

namespace p2prep {
namespace {

class FuzzSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeedTest, TraceParserNeverCrashesOnGarbage) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    const std::size_t len = rng.next_below(400);
    for (std::size_t k = 0; k < len; ++k) {
      // Bias toward CSV-ish characters so parsing goes deep sometimes.
      const double dice = rng.next_double();
      if (dice < 0.3) garbage += static_cast<char>('0' + rng.next_below(10));
      else if (dice < 0.5) garbage += ',';
      else if (dice < 0.6) garbage += '\n';
      else garbage += static_cast<char>(32 + rng.next_below(95));
    }
    // Sometimes prefix a valid header so body parsing is exercised.
    if (rng.chance(0.5)) garbage = "rater,ratee,stars,day\n" + garbage;
    std::stringstream ss(garbage);
    const auto parsed = trace::read_trace_csv(ss);
    if (!parsed.ok()) {
      EXPECT_FALSE(parsed.error.message.empty());
    } else {
      for (const auto& r : *parsed.value) {
        EXPECT_GE(r.stars, 1);
        EXPECT_LE(r.stars, 5);
      }
    }
  }
}

TEST_P(FuzzSeedTest, DetectorsSaneOnRandomMatrices) {
  util::Rng rng(GetParam() ^ 0x1234);
  constexpr std::size_t kN = 25;
  rating::RatingStore store(kN);
  // Arbitrary rating soup, including extreme frequencies.
  const std::size_t events = 200 + rng.next_below(3000);
  for (std::size_t k = 0; k < events; ++k) {
    rating::Rating r;
    r.rater = static_cast<rating::NodeId>(rng.next_below(kN));
    r.ratee = static_cast<rating::NodeId>(rng.next_below(kN));
    const double dice = rng.next_double();
    r.score = dice < 0.45 ? rating::Score::kPositive
                          : (dice < 0.9 ? rating::Score::kNegative
                                        : rating::Score::kNeutral);
    store.ingest(r);
  }
  std::vector<double> reps(kN);
  for (auto& rep : reps) rep = rng.uniform(-1.0, 1.0);

  core::DetectorConfig config;
  config.positive_fraction_min = rng.uniform(0.1, 1.0);
  config.complement_fraction_max = rng.uniform(0.0, 0.9);
  config.frequency_min = 1 + static_cast<std::uint32_t>(rng.next_below(50));
  config.high_rep_threshold = rng.uniform(-0.5, 0.5);
  const auto matrix = rating::RatingMatrix::build(
      store, reps, config.high_rep_threshold, config.frequency_min);

  const auto basic = core::BasicCollusionDetector(config).detect(matrix);
  const auto optimized =
      core::OptimizedCollusionDetector(config).detect(matrix);
  const auto groups = core::GroupCollusionDetector(config).detect(matrix);

  // Reports are canonical: ordered pairs, ids in range, cost sane.
  auto check = [&](const core::DetectionReport& report) {
    for (std::size_t i = 0; i < report.pairs.size(); ++i) {
      const auto& e = report.pairs[i];
      EXPECT_LT(e.first, e.second);
      EXPECT_LT(e.second, kN);
      if (i > 0) {
        EXPECT_LT(core::pair_key(report.pairs[i - 1].first,
                                 report.pairs[i - 1].second),
                  core::pair_key(e.first, e.second));
      }
    }
    EXPECT_GT(report.cost.total(), 0u);
  };
  check(basic);
  check(optimized);
  // Joint-complement mode: the two methods agree exactly.
  std::vector<std::uint64_t> kb;
  std::vector<std::uint64_t> ko;
  for (const auto& e : basic.pairs) kb.push_back(core::pair_key(e.first, e.second));
  for (const auto& e : optimized.pairs) ko.push_back(core::pair_key(e.first, e.second));
  EXPECT_EQ(kb, ko);

  for (const auto& g : groups.groups) {
    EXPECT_GE(g.members.size(), 2u);
    for (rating::NodeId m : g.members) EXPECT_LT(m, kN);
  }
}

TEST_P(FuzzSeedTest, ChordChurnSequencesKeepInvariants) {
  util::Rng rng(GetParam() ^ 0x777);
  dht::ChordRing ring;
  std::size_t members = 0;
  for (int op = 0; op < 120; ++op) {
    const auto id = static_cast<rating::NodeId>(rng.next_below(64));
    if (rng.chance(0.6)) {
      if (ring.add_node(id)) ++members;
    } else if (members > 1) {
      if (ring.remove_node(id)) --members;
    }
    if (members == 0) {
      ring.add_node(0);
      members = 1;
    }
    ring.rebuild();
    EXPECT_EQ(ring.size(), members);
    // Lookups from any member resolve to the oracle owner.
    rating::NodeId start = rating::kInvalidNode;
    for (rating::NodeId candidate = 0; candidate < 64; ++candidate) {
      if (ring.contains(candidate)) {
        start = candidate;
        break;
      }
    }
    ASSERT_NE(start, rating::kInvalidNode);
    const dht::Key key = rng.next();
    EXPECT_EQ(ring.lookup(start, key).owner, ring.owner_of(key));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace p2prep
