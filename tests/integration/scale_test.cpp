// Scale smoke tests: the Optimized path must stay tractable well beyond
// the paper's 200-node setting.
#include <gtest/gtest.h>

#include <chrono>

#include "core/optimized_detector.h"
#include "managers/incremental.h"
#include "reputation/summation.h"
#include "util/rng.h"

namespace p2prep {
namespace {

TEST(ScaleTest, OptimizedDetectionAtTwoThousandNodes) {
  constexpr std::size_t kN = 2000;
  reputation::SummationEngine engine;
  core::DetectorConfig config;
  config.positive_fraction_min = 0.8;
  config.complement_fraction_max = 0.2;
  config.frequency_min = 20;
  config.high_rep_threshold = 0.05;
  managers::IncrementalCentralizedManager mgr(kN, engine, config);

  util::Rng rng(2000);
  // 20 colluding pairs + 60k organic ratings.
  for (std::size_t p = 0; p < 20; ++p) {
    const auto a = static_cast<rating::NodeId>(2 * p);
    const auto b = static_cast<rating::NodeId>(2 * p + 1);
    for (int k = 0; k < 40; ++k) {
      mgr.ingest({a, b, rating::Score::kPositive, 0});
      mgr.ingest({b, a, rating::Score::kPositive, 0});
    }
  }
  for (std::size_t k = 0; k < 60000; ++k) {
    auto rater = static_cast<rating::NodeId>(rng.next_below(kN));
    auto ratee = static_cast<rating::NodeId>(rng.next_below(kN));
    if (rater == ratee) ratee = static_cast<rating::NodeId>((ratee + 1) % kN);
    mgr.ingest({rater, ratee,
                rng.chance(ratee < 40 ? 0.05 : 0.85)
                    ? rating::Score::kPositive
                    : rating::Score::kNegative,
                0});
  }
  mgr.update_reputations();

  const auto start = std::chrono::steady_clock::now();
  core::OptimizedCollusionDetector detector(config);
  const auto report = mgr.run_detection(detector);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  for (std::size_t p = 0; p < 20; ++p) {
    EXPECT_TRUE(report.contains(static_cast<rating::NodeId>(2 * p),
                                static_cast<rating::NodeId>(2 * p + 1)))
        << "pair " << p;
  }
  EXPECT_EQ(report.pairs.size(), 20u);
  // O(m n) detection over 2000 nodes must complete interactively. Very
  // generous bound to stay robust on slow CI machines.
  EXPECT_LT(elapsed.count(), 5000);
}

}  // namespace
}  // namespace p2prep
