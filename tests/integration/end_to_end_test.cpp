// Cross-module integration tests: the full pipelines the paper's
// evaluation exercises, at reduced scale.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/basic_detector.h"
#include "core/optimized_detector.h"
#include "managers/decentralized.h"
#include "net/experiment.h"
#include "net/simulator.h"
#include "rating/matrix.h"
#include "reputation/weighted.h"
#include "trace/analysis.h"
#include "trace/overstock.h"

namespace p2prep {
namespace {

core::DetectorConfig sim_detector_config() {
  core::DetectorConfig c;
  c.positive_fraction_min = 0.9;
  c.complement_fraction_max = 0.7;
  c.frequency_min = 20;
  c.high_rep_threshold = 0.05;
  return c;
}

TEST(EndToEndTest, EigenTrustAloneRewardsColluders) {
  // Fig. 5's shape at small scale: without detection, colluders with
  // B = 0.6 out-rank even pretrusted nodes.
  net::SimConfig config;
  config.num_nodes = 80;
  config.num_interests = 10;
  config.sim_cycles = 8;
  config.query_cycles_per_sim_cycle = 10;
  config.colluder_good_prob = 0.6;
  config.seed = 5;
  const net::NodeRoles roles = net::paper_roles(8, 3);

  reputation::WeightedFeedbackEngine engine;
  net::Simulator sim(config, roles, engine);
  sim.run();

  double top_colluder = 0.0;
  for (rating::NodeId id : roles.colluders)
    top_colluder = std::max(top_colluder, engine.reputation(id));
  double top_pretrusted = 0.0;
  for (rating::NodeId id : roles.pretrusted)
    top_pretrusted = std::max(top_pretrusted, engine.reputation(id));
  EXPECT_GT(top_colluder, top_pretrusted);
}

TEST(EndToEndTest, DetectionRestoresOrder) {
  // Fig. 9/10's shape: with the detector attached, colluders drop to zero
  // and pretrusted nodes rise above everyone.
  net::SimConfig config;
  config.num_nodes = 80;
  config.num_interests = 10;
  config.sim_cycles = 8;
  config.query_cycles_per_sim_cycle = 10;
  config.colluder_good_prob = 0.2;
  config.seed = 6;
  const net::NodeRoles roles = net::paper_roles(8, 3);

  // Baseline: EigenTrust alone.
  reputation::WeightedFeedbackEngine baseline_engine;
  net::Simulator baseline(config, roles, baseline_engine);
  baseline.run();

  // EigenTrust + Optimized.
  reputation::WeightedFeedbackEngine engine;
  core::OptimizedCollusionDetector detector(sim_detector_config());
  net::Simulator sim(config, roles, engine, &detector);
  sim.run();

  for (rating::NodeId id : roles.colluders)
    EXPECT_DOUBLE_EQ(engine.reputation(id), 0.0);

  // The paper's Fig. 10 comparison: with detection, normal nodes' share of
  // the reputation mass grows relative to the EigenTrust-alone baseline
  // (the colluders' share is redistributed).
  auto normal_share = [&](const reputation::ReputationEngine& e) {
    double share = 0.0;
    for (rating::NodeId id = 11; id < config.num_nodes; ++id)
      share += e.reputation(id);
    return share;
  };
  EXPECT_GT(normal_share(engine), normal_share(baseline_engine));
  // And no non-colluder was suppressed.
  for (rating::NodeId id : sim.manager().detected())
    EXPECT_EQ(roles.type_of(id), net::NodeType::kColluder);
}

TEST(EndToEndTest, CompromisedPretrustedDetected) {
  // Fig. 11's shape: compromised pretrusted nodes (0 and 1) are zeroed,
  // the clean pretrusted node (2) keeps a high reputation.
  net::SimConfig config;
  config.num_nodes = 80;
  config.num_interests = 10;
  config.sim_cycles = 8;
  config.query_cycles_per_sim_cycle = 10;
  config.seed = 7;
  const net::NodeRoles roles = net::compromised_roles();

  reputation::WeightedFeedbackEngine engine;
  core::OptimizedCollusionDetector detector(sim_detector_config());
  net::Simulator sim(config, roles, engine, &detector);
  sim.run();

  EXPECT_DOUBLE_EQ(engine.reputation(0), 0.0);  // compromised pretrusted
  EXPECT_DOUBLE_EQ(engine.reputation(1), 0.0);  // compromised pretrusted
  for (rating::NodeId id : roles.colluders)
    EXPECT_DOUBLE_EQ(engine.reputation(id), 0.0);
  EXPECT_GT(engine.reputation(2), 0.0);  // clean pretrusted survives
}

TEST(EndToEndTest, TraceToDetectorPipeline) {
  // Overstock trace -> +/-1 rating store -> Basic detector finds exactly
  // the injected colluding pairs.
  trace::OverstockTraceConfig tc;
  tc.num_users = 400;
  tc.num_transactions = 3000;
  tc.num_collusion_pairs = 6;
  tc.seed = 99;
  const trace::OverstockTrace tr = trace::generate_overstock_trace(tc);

  rating::RatingStore store(tc.num_users);
  for (const trace::MarketplaceRating& r : tr.ratings) {
    store.ingest({.rater = r.rater,
                  .ratee = r.ratee,
                  .score = rating::score_from_stars(r.stars),
                  .time = r.day});
  }
  std::vector<double> reps(tc.num_users);
  for (rating::NodeId i = 0; i < tc.num_users; ++i)
    reps[i] = static_cast<double>(store.window_totals(i).reputation_delta());
  const auto matrix = rating::RatingMatrix::build(store, reps, 0.0);

  core::DetectorConfig dc;
  dc.positive_fraction_min = 0.8;
  // Colluders trade organically too; everyone else likes them (organic
  // quality 0.85), so C2 carries no signal in this marketplace-style
  // workload — rely on frequency + mutual positivity by making the
  // complement check vacuous (every fraction is < 1.01).
  dc.complement_fraction_max = 1.01;
  dc.frequency_min = 21;
  dc.high_rep_threshold = 0.0;

  const auto report = core::BasicCollusionDetector(dc).detect(matrix);
  for (const auto& [a, b] : tr.truth.collusion_pairs)
    EXPECT_TRUE(report.contains(a, b)) << a << "," << b;
  // No organic pair reaches 21 ratings in either direction.
  EXPECT_EQ(report.pairs.size(), tr.truth.collusion_pairs.size());
}

TEST(EndToEndTest, DecentralizedMatchesSimulatedWorkload) {
  // Feed one simulation cycle's ratings into the DHT deployment and check
  // the colluders fall out of the decentralized protocol too.
  net::SimConfig config;
  config.num_nodes = 60;
  config.num_interests = 8;
  config.sim_cycles = 1;
  config.query_cycles_per_sim_cycle = 10;
  config.seed = 11;
  const net::NodeRoles roles = net::paper_roles(6, 0);

  reputation::WeightedFeedbackEngine engine;
  net::Simulator sim(config, roles, engine);
  sim.run_sim_cycle();

  managers::DecentralizedReputationSystem::Config dcfg;
  dcfg.num_nodes = config.num_nodes;
  dcfg.detector.positive_fraction_min = 0.9;
  dcfg.detector.complement_fraction_max = 0.7;
  dcfg.detector.frequency_min = 20;
  dcfg.detector.high_rep_threshold = 0.0;
  managers::DecentralizedReputationSystem dht_system(dcfg);

  // Replay the centralized ledger into the DHT deployment (lifetime
  // horizon: the simulator rolls its window over after each cycle).
  const auto& store = sim.manager().store();
  for (rating::NodeId ratee = 0; ratee < config.num_nodes; ++ratee) {
    store.for_each_lifetime_rater(
        ratee, [&](rating::NodeId rater, const rating::PairStats& stats) {
          for (std::uint32_t k = 0; k < stats.positive; ++k)
            dht_system.ingest({.rater = rater, .ratee = ratee,
                               .score = rating::Score::kPositive, .time = 0});
          for (std::uint32_t k = 0; k < stats.negative; ++k)
            dht_system.ingest({.rater = rater, .ratee = ratee,
                               .score = rating::Score::kNegative, .time = 0});
        });
  }

  const auto outcome =
      dht_system.run_detection(managers::DetectionMethod::kOptimized);
  for (const auto& [a, b] : roles.collusion_edges)
    EXPECT_TRUE(outcome.report.contains(a, b)) << a << "," << b;
}

TEST(EndToEndTest, Figure12ShapeAtSmallScale) {
  // More colluders -> EigenTrust routes more traffic to them; with
  // detection the share stays low.
  net::ExperimentSpec spec;
  spec.config.num_nodes = 60;
  spec.config.num_interests = 8;
  spec.config.sim_cycles = 4;
  spec.config.query_cycles_per_sim_cycle = 10;
  spec.config.seed = 13;
  spec.runs = 2;
  spec.detector_config = sim_detector_config();

  spec.roles = net::paper_roles(4, 3);
  const auto few_baseline = net::run_experiment(spec);
  spec.roles = net::paper_roles(16, 3);
  const auto many_baseline = net::run_experiment(spec);
  EXPECT_GT(many_baseline.avg_percent_to_colluders,
            few_baseline.avg_percent_to_colluders);

  spec.detector = net::DetectorKind::kOptimized;
  const auto many_protected = net::run_experiment(spec);
  EXPECT_LT(many_protected.avg_percent_to_colluders,
            many_baseline.avg_percent_to_colluders * 0.8);
}

}  // namespace
}  // namespace p2prep
