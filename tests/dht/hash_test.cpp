#include "dht/hash.h"

#include <gtest/gtest.h>

#include <set>

namespace p2prep::dht {
namespace {

TEST(HashTest, BytesHashIsDeterministic) {
  EXPECT_EQ(hash_bytes("hello"), hash_bytes("hello"));
  EXPECT_NE(hash_bytes("hello"), hash_bytes("hellp"));
  EXPECT_NE(hash_bytes(""), hash_bytes("a"));
}

TEST(HashTest, NodeKeyIsDeterministic) {
  EXPECT_EQ(hash_node(42), hash_node(42));
  EXPECT_NE(hash_node(42), hash_node(43));
}

TEST(HashTest, NodeAndRecordKeysAreDomainSeparated) {
  // A node's ring position must be independent of where its reputation
  // records live.
  for (rating::NodeId id = 0; id < 100; ++id)
    EXPECT_NE(hash_node(id), hash_reputation_record(id));
}

TEST(HashTest, NoCollisionsAcrossRealisticIdRange) {
  std::set<Key> keys;
  for (rating::NodeId id = 0; id < 100000; ++id) {
    keys.insert(hash_node(id));
    keys.insert(hash_reputation_record(id));
  }
  EXPECT_EQ(keys.size(), 200000u);
}

TEST(HashTest, KeysSpreadAcrossSpace) {
  // Crude uniformity: bucket the top byte of 10k node keys; every bucket
  // of 16 should be populated.
  std::set<unsigned> buckets;
  for (rating::NodeId id = 0; id < 10000; ++id)
    buckets.insert(static_cast<unsigned>(hash_node(id) >> 60));
  EXPECT_EQ(buckets.size(), 16u);
}

}  // namespace
}  // namespace p2prep::dht
