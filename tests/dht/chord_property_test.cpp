// Property sweeps over ring sizes: routing correctness from every start,
// hop bounds, ownership partition, and churn invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "dht/chord.h"
#include "util/rng.h"

namespace p2prep::dht {
namespace {

class ChordPropertyTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  [[nodiscard]] ChordRing make_ring(std::size_t n) const {
    ChordRing ring;
    for (rating::NodeId id = 0; id < n; ++id)
      EXPECT_TRUE(ring.add_node(id));
    ring.rebuild();
    return ring;
  }
};

TEST_P(ChordPropertyTest, EveryLookupResolvesToTrueOwner) {
  const std::size_t n = GetParam();
  const ChordRing ring = make_ring(n);
  util::Rng rng(n * 7 + 1);
  for (int probe = 0; probe < 200; ++probe) {
    const Key key = rng.next();
    const auto start = static_cast<rating::NodeId>(rng.next_below(n));
    const LookupResult r = ring.lookup(start, key);
    EXPECT_EQ(r.owner, ring.owner_of(key))
        << "n=" << n << " start=" << start << " key=" << key;
  }
}

TEST_P(ChordPropertyTest, HopCountLogarithmic) {
  const std::size_t n = GetParam();
  const ChordRing ring = make_ring(n);
  util::Rng rng(n * 13 + 1);
  std::size_t total_hops = 0;
  constexpr int kProbes = 300;
  for (int probe = 0; probe < kProbes; ++probe) {
    const auto start = static_cast<rating::NodeId>(rng.next_below(n));
    total_hops += ring.lookup(start, rng.next()).hops;
  }
  const double avg = static_cast<double>(total_hops) / kProbes;
  // Chord's expected hop count is ~(1/2) log2 n; allow generous slack.
  const double log2n = std::log2(static_cast<double>(n) + 1.0);
  EXPECT_LE(avg, 2.0 * log2n + 2.0) << "n=" << n << " avg=" << avg;
}

TEST_P(ChordPropertyTest, OwnershipPartitionsKeySpace) {
  const std::size_t n = GetParam();
  const ChordRing ring = make_ring(n);
  // Sampled keys all have exactly one owner, and each member owns the arc
  // ending at its own key (successor rule: owner_of(member key) == member).
  for (const Key member_key : ring.member_keys()) {
    const rating::NodeId owner = ring.owner_of(member_key);
    EXPECT_EQ(ring.key_of(owner), member_key);
  }
  util::Rng rng(n);
  std::set<rating::NodeId> owners;
  for (int probe = 0; probe < 500; ++probe)
    owners.insert(ring.owner_of(rng.next()));
  EXPECT_LE(owners.size(), n);
  if (n >= 16) EXPECT_GT(owners.size(), 1u);
}

TEST_P(ChordPropertyTest, RemovalTransfersOwnershipToSuccessorOnly) {
  const std::size_t n = GetParam();
  if (n < 3) return;
  ChordRing ring = make_ring(n);
  util::Rng rng(n * 3);
  const auto victim = static_cast<rating::NodeId>(rng.next_below(n));

  // Keys owned by others must keep their owner after the victim leaves.
  std::vector<std::pair<Key, rating::NodeId>> samples;
  for (int probe = 0; probe < 200; ++probe) {
    const Key key = rng.next();
    samples.emplace_back(key, ring.owner_of(key));
  }
  ring.remove_node(victim);
  ring.rebuild();
  for (const auto& [key, owner] : samples) {
    if (owner == victim) continue;  // victim's arc moves to its successor
    EXPECT_EQ(ring.owner_of(key), owner) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(RingSizes, ChordPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 17, 64, 257, 1000));

}  // namespace
}  // namespace p2prep::dht
