#include "dht/chord.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace p2prep::dht {
namespace {

ChordRing make_ring(std::size_t n, ChordConfig config = {}) {
  ChordRing ring(config);
  for (rating::NodeId id = 0; id < n; ++id)
    EXPECT_TRUE(ring.add_node(id));
  ring.rebuild();
  return ring;
}

TEST(ChordRingTest, AddRemoveContains) {
  ChordRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_TRUE(ring.add_node(1));
  EXPECT_FALSE(ring.add_node(1));  // duplicate
  EXPECT_TRUE(ring.contains(1));
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_TRUE(ring.remove_node(1));
  EXPECT_FALSE(ring.remove_node(1));
  EXPECT_FALSE(ring.contains(1));
}

TEST(ChordRingTest, OwnerIsSuccessorOfKey) {
  ChordRing ring = make_ring(16);
  // Verify against a brute-force successor computation.
  const auto& keys = ring.member_keys();
  ASSERT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  for (Key probe :
       {Key{0}, Key{12345}, keys.front(), keys.back(), keys.front() - 1,
        keys.back() + 1, Key{1} << 31}) {
    const rating::NodeId owner = ring.owner_of(probe);
    const Key owner_key = ring.key_of(owner);
    auto it = std::lower_bound(keys.begin(), keys.end(),
                               probe & ((Key{1} << 32) - 1));
    const Key expected = it == keys.end() ? keys.front() : *it;
    EXPECT_EQ(owner_key, expected);
  }
}

TEST(ChordRingTest, SingleNodeOwnsEverything) {
  ChordRing ring = make_ring(1);
  EXPECT_EQ(ring.owner_of(0), 0u);
  EXPECT_EQ(ring.owner_of(~Key{0}), 0u);
  const LookupResult r = ring.lookup(0, 999);
  EXPECT_EQ(r.owner, 0u);
  EXPECT_EQ(r.hops, 0u);
}

TEST(ChordRingTest, LookupFindsCorrectOwnerFromEveryStart) {
  ChordRing ring = make_ring(32);
  for (rating::NodeId start = 0; start < 32; ++start) {
    for (rating::NodeId target = 0; target < 32; ++target) {
      const Key key = hash_reputation_record(target);
      const LookupResult r = ring.lookup(start, key);
      EXPECT_EQ(r.owner, ring.owner_of(key))
          << "start=" << start << " target=" << target;
    }
  }
}

TEST(ChordRingTest, LookupHopsAreLogarithmic) {
  ChordRing ring = make_ring(256);
  std::size_t max_hops = 0;
  for (rating::NodeId start = 0; start < 256; start += 7) {
    for (int probe = 0; probe < 50; ++probe) {
      const Key key = hash_bytes(std::to_string(probe));
      const LookupResult r = ring.lookup(start, key);
      EXPECT_EQ(r.owner, ring.owner_of(key));
      max_hops = std::max(max_hops, r.hops);
    }
  }
  // Chord bound: O(log N) w.h.p.; 256 nodes in a 2^32 space stay well
  // under 4*log2(256) = 32 hops.
  EXPECT_LE(max_hops, 32u);
  EXPECT_GT(max_hops, 0u);
}

TEST(ChordRingTest, LookupPathStartsAtOriginAndEndsAtOwner) {
  ChordRing ring = make_ring(64);
  const Key key = hash_reputation_record(7);
  const LookupResult r = ring.lookup(3, key);
  ASSERT_FALSE(r.path.empty());
  EXPECT_EQ(r.path.front(), 3u);
  EXPECT_EQ(r.path.back(), r.owner);
  EXPECT_EQ(r.path.size(), r.hops + 1);
}

TEST(ChordRingTest, ManagerOfMatchesRecordKeyOwner) {
  ChordRing ring = make_ring(20);
  for (rating::NodeId id = 0; id < 100; ++id)
    EXPECT_EQ(ring.manager_of(id),
              ring.owner_of(hash_reputation_record(id)));
}

TEST(ChordRingTest, MessageAccountingAccumulates) {
  ChordRing ring = make_ring(64);
  ring.reset_message_count();
  (void)ring.lookup(0, hash_reputation_record(10));
  (void)ring.lookup(5, hash_reputation_record(20));
  EXPECT_GT(ring.total_messages(), 0u);
  ring.reset_message_count();
  EXPECT_EQ(ring.total_messages(), 0u);
}

TEST(ChordRingTest, RemoveNodeReassignsOwnership) {
  ChordRing ring = make_ring(8);
  const Key key = hash_reputation_record(3);
  const rating::NodeId owner = ring.owner_of(key);
  ring.remove_node(owner);
  ring.rebuild();
  const rating::NodeId new_owner = ring.owner_of(key);
  EXPECT_NE(new_owner, owner);
  EXPECT_TRUE(ring.contains(new_owner));
}

TEST(ChordRingTest, FingersPointAtSuccessorsOfPowers) {
  ChordConfig config{.bits = 16, .successor_list = 2};
  ChordRing ring(config);
  for (rating::NodeId id = 0; id < 10; ++id) ring.add_node(id);
  ring.rebuild();
  for (rating::NodeId id = 0; id < 10; ++id) {
    const auto& fingers = ring.fingers_of(id);
    ASSERT_EQ(fingers.size(), config.bits);
    const Key base = ring.key_of(id);
    for (std::size_t k = 0; k < config.bits; ++k) {
      const Key target = (base + (Key{1} << k)) & 0xffff;
      EXPECT_EQ(fingers[k], ring.owner_of(target));
    }
  }
}

TEST(ChordRingTest, SmallBitWidthStillRoutes) {
  ChordConfig config{.bits = 8, .successor_list = 2};
  ChordRing ring(config);
  // 8-bit space: collisions possible; add until a few land.
  std::size_t added = 0;
  for (rating::NodeId id = 0; id < 100 && added < 12; ++id) {
    if (ring.add_node(id)) ++added;
  }
  ring.rebuild();
  ASSERT_GE(ring.size(), 4u);
  const rating::NodeId start = ring.member_keys().empty()
                                   ? 0
                                   : ring.owner_of(0);
  for (Key key = 0; key < 256; key += 13) {
    const LookupResult r = ring.lookup(start, key);
    EXPECT_EQ(r.owner, ring.owner_of(key));
  }
}

TEST(ChordRingTest, LoadIsBalancedWithinReason) {
  ChordRing ring = make_ring(50);
  std::vector<std::size_t> load(50, 0);
  for (rating::NodeId id = 0; id < 5000; ++id)
    ++load[ring.manager_of(id)];
  const auto max_load = *std::max_element(load.begin(), load.end());
  // Consistent hashing without virtual nodes: expect max O(log n / n)
  // imbalance; 10x mean is a generous sanity ceiling.
  EXPECT_LE(max_load, 1000u);
}

}  // namespace
}  // namespace p2prep::dht
