// Crash-recovery tests: kill a service mid-stream, rebuild it from its WAL
// directory, and require that post-recovery state and detection reports are
// byte-identical to an uninterrupted reference run over the same stream.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/basic_detector.h"
#include "core/optimized_detector.h"
#include "managers/incremental.h"
#include "reputation/summation.h"
#include "service/service.h"
#include "util/rng.h"

namespace p2prep::service {
namespace {

namespace fs = std::filesystem;
using rating::Rating;
using rating::Score;

std::vector<Rating> collusion_workload(std::uint64_t seed, std::size_t n) {
  std::vector<Rating> out;
  util::Rng rng(seed);
  rating::Tick t = 0;
  for (int k = 0; k < 40; ++k) {
    out.push_back({0, 1, Score::kPositive, t++});
    out.push_back({1, 0, Score::kPositive, t++});
    out.push_back({2, 3, Score::kPositive, t++});
    out.push_back({3, 2, Score::kPositive, t++});
  }
  for (rating::NodeId rater = 0; rater < n; ++rater) {
    for (int k = 0; k < 5; ++k) {
      auto ratee = static_cast<rating::NodeId>(rng.next_below(n));
      if (ratee == rater) ratee = static_cast<rating::NodeId>((ratee + 1) % n);
      out.push_back({rater, ratee,
                     rng.chance(ratee < 4 ? 0.05 : 0.85) ? Score::kPositive
                                                         : Score::kNegative,
                     t++});
    }
  }
  return out;
}

class RecoveryTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 50;
  static constexpr std::size_t kShards = 3;

  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("p2prep_recovery_test_" + std::string(::testing::UnitTest::
                                                      GetInstance()
                                                          ->current_test_info()
                                                          ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] ServiceConfig durable_config(
      std::uint64_t checkpoint_every = 0) const {
    ServiceConfig cfg;
    cfg.num_nodes = kN;
    cfg.num_shards = kShards;
    cfg.epoch_ratings = 1u << 30;  // epochs driven by force_epoch()
    cfg.detector_config.positive_fraction_min = 0.8;
    cfg.detector_config.complement_fraction_max = 0.2;
    cfg.detector_config.frequency_min = 20;
    cfg.detector_config.high_rep_threshold = 0.05;
    cfg.wal_dir = dir_.string();
    cfg.checkpoint_every_epochs = checkpoint_every;
    return cfg;
  }

  /// Reference epoch reports: a single centralized manager over the same
  /// stream, detecting at the same positions the service epochs at.
  struct Reference {
    explicit Reference(const core::DetectorConfig& cfg)
        : engine(kN, /*normalize=*/false), manager(kN, engine, cfg) {
      detector = std::make_unique<core::OptimizedCollusionDetector>(cfg);
    }
    std::string run_epoch(std::uint64_t seq) {
      manager.update_reputations();
      const auto report = manager.run_detection(
          *detector, managers::CentralizedManager::SuppressionMode::kReset);
      return format_epoch_report("global", seq, report);
    }
    reputation::SummationEngine engine;
    managers::IncrementalCentralizedManager manager;
    std::unique_ptr<core::CollusionDetector> detector;
  };

  static void expect_matches_reference(const ReputationService& svc,
                                       const Reference& ref) {
    const ServiceSnapshot snap = svc.snapshot();
    for (rating::NodeId i = 0; i < kN; ++i) {
      EXPECT_EQ(snap.reputation(i), ref.engine.detection_reputation(i))
          << "node " << i;
      EXPECT_EQ(snap.suspected(i), ref.manager.detected().contains(i))
          << "node " << i;
    }
  }

  fs::path dir_;
};

TEST_F(RecoveryTest, WalReplayReproducesReportsByteForByte) {
  const ServiceConfig cfg = durable_config();
  const std::vector<Rating> workload = collusion_workload(21, kN);
  const std::size_t half = workload.size() / 2;

  core::DetectorConfig ref_cfg = cfg.detector_config;
  ref_cfg.flag_accomplices = false;  // the service forces this in kGlobal
  Reference ref(ref_cfg);
  std::string expected_log;

  // Phase 1: feed half the stream, run one epoch, then crash. drain()
  // first so the crash point is well-defined (everything fed is in the
  // WAL); crash_stop() discards all in-memory state without flushing.
  {
    ReputationService svc(cfg);
    ASSERT_FALSE(svc.recovered());
    for (std::size_t k = 0; k < half; ++k)
      ASSERT_TRUE(svc.ingest(workload[k]));
    const std::uint64_t seq = svc.force_epoch();
    svc.drain();
    EXPECT_EQ(seq, 1u);
    svc.crash_stop();
  }
  for (std::size_t k = 0; k < half; ++k) ASSERT_TRUE(ref.manager.ingest(workload[k]));
  expected_log += ref.run_epoch(1);

  // Phase 2: recover and finish the stream.
  {
    ReputationService svc(cfg);
    ASSERT_TRUE(svc.recovered());
    // Replay already regenerated epoch 1's report, byte-identically.
    EXPECT_EQ(svc.report_log(), expected_log);
    expect_matches_reference(svc, ref);
    EXPECT_EQ(svc.metrics().ratings_applied, half);

    for (std::size_t k = half; k < workload.size(); ++k)
      ASSERT_TRUE(svc.ingest(workload[k]));
    const std::uint64_t seq = svc.force_epoch();
    svc.drain();
    EXPECT_EQ(seq, 2u);

    for (std::size_t k = half; k < workload.size(); ++k)
      ASSERT_TRUE(ref.manager.ingest(workload[k]));
    expected_log += ref.run_epoch(2);

    EXPECT_EQ(svc.report_log(), expected_log);
    expect_matches_reference(svc, ref);
    svc.stop();
  }
}

TEST_F(RecoveryTest, TornWalTailIsDiscardedOnRecovery) {
  const ServiceConfig cfg = durable_config();
  const std::vector<Rating> workload = collusion_workload(22, kN);
  {
    ReputationService svc(cfg);
    for (const Rating& r : workload) ASSERT_TRUE(svc.ingest(r));
    svc.drain();
    svc.crash_stop();
  }
  // Simulate a crash mid-append: garbage half-frame at one shard's tail.
  {
    std::ofstream out(dir_ / "shard-000.wal",
                      std::ios::binary | std::ios::app);
    out.write("\x40\x00\x00\x00\xde\xad", 6);
  }
  ReputationService svc(cfg);
  ASSERT_TRUE(svc.recovered());
  // The torn bytes held no applied record, so nothing is lost.
  EXPECT_EQ(svc.metrics().ratings_applied, workload.size());
  svc.force_epoch();
  svc.drain();
  EXPECT_GT(svc.metrics().detections_total, 0u);
  svc.stop();
}

TEST_F(RecoveryTest, UnpairedEpochMarkerIsDroppedAndTruncated) {
  const ServiceConfig cfg = durable_config();
  const std::vector<Rating> workload = collusion_workload(23, kN);
  {
    ReputationService svc(cfg);
    for (const Rating& r : workload) ASSERT_TRUE(svc.ingest(r));
    svc.drain();
    svc.crash_stop();
  }
  // A marker that reached only shard 0's WAL before the crash: that epoch
  // never ran and recovery must discard the marker.
  const std::string wal0 = (dir_ / "shard-000.wal").string();
  const WalReadResult before = read_wal(wal0);
  ASSERT_TRUE(before.found);
  {
    WalWriter w = WalWriter::resume(wal0, before.generation,
                                    before.map_epoch, before.num_shards,
                                    before.valid_bytes,
                                    before.records.size());
    w.append(WalRecord::make_marker(1));
  }
  {
    ReputationService svc(cfg);
    ASSERT_TRUE(svc.recovered());
    EXPECT_EQ(svc.metrics().epochs_completed, 0u);
    EXPECT_EQ(svc.metrics().ratings_applied, workload.size());
    svc.stop();
  }
  // The rewritten WAL must not contain the unpaired marker anymore.
  const WalReadResult after = read_wal(wal0);
  ASSERT_TRUE(after.found);
  for (const WalRecord& rec : after.records)
    EXPECT_EQ(rec.kind, WalRecordKind::kRating);
}

TEST_F(RecoveryTest, CheckpointCompactionPreservesByteIdenticalReports) {
  const ServiceConfig cfg = durable_config(/*checkpoint_every=*/1);
  const std::vector<Rating> workload = collusion_workload(24, kN);
  const std::size_t half = workload.size() / 2;
  const std::size_t extra = half + (workload.size() - half) / 2;

  core::DetectorConfig ref_cfg = cfg.detector_config;
  ref_cfg.flag_accomplices = false;
  Reference ref(ref_cfg);

  // Phase 1: one epoch (checkpointed, WAL rotated), then more ratings
  // that land in the rotated WAL, then crash.
  std::uint64_t wal_records_at_crash = 0;
  {
    ReputationService svc(cfg);
    for (std::size_t k = 0; k < half; ++k)
      ASSERT_TRUE(svc.ingest(workload[k]));
    svc.force_epoch();
    svc.drain();
    EXPECT_EQ(svc.metrics().checkpoints_written, kShards);
    for (std::size_t k = half; k < extra; ++k)
      ASSERT_TRUE(svc.ingest(workload[k]));
    svc.drain();
    wal_records_at_crash = svc.metrics().wal_records;
    svc.crash_stop();
  }
  // Compaction: the rotated WALs hold only the post-checkpoint ratings.
  EXPECT_EQ(wal_records_at_crash, extra - half);

  for (std::size_t k = 0; k < half; ++k) ASSERT_TRUE(ref.manager.ingest(workload[k]));
  ref.run_epoch(1);

  // Phase 2: recover from checkpoint + rotated WAL; finish the stream.
  {
    ReputationService svc(cfg);
    ASSERT_TRUE(svc.recovered());
    EXPECT_EQ(svc.metrics().ratings_applied, extra);
    // Epoch 1 was restored from the checkpoint, not replayed, so the
    // recovered log is empty; post-recovery reports must still match the
    // uninterrupted reference byte for byte.
    EXPECT_EQ(svc.report_log(), "");

    // (No state comparison here: between epochs the reference engine's
    // live sums already include the replayed ratings while both published
    // views don't update until the next epoch.)
    for (std::size_t k = half; k < extra; ++k)
      ASSERT_TRUE(ref.manager.ingest(workload[k]));

    for (std::size_t k = extra; k < workload.size(); ++k) {
      ASSERT_TRUE(svc.ingest(workload[k]));
      ASSERT_TRUE(ref.manager.ingest(workload[k]));
    }
    const std::uint64_t seq = svc.force_epoch();
    svc.drain();
    EXPECT_EQ(seq, 2u);
    EXPECT_EQ(svc.report_log(), ref.run_epoch(2));
    expect_matches_reference(svc, ref);
    svc.stop();
  }
}

TEST_F(RecoveryTest, PerShardScopeRecoversCadenceEpochs) {
  ServiceConfig cfg = durable_config();
  cfg.epoch_scope = EpochScope::kPerShard;
  cfg.epoch_ratings = 40;  // natural cadence epochs, logged as markers
  const std::vector<Rating> workload = collusion_workload(25, kN);

  std::string log_before;
  std::vector<double> reps_before(kN);
  {
    ReputationService svc(cfg);
    for (const Rating& r : workload) ASSERT_TRUE(svc.ingest(r));
    svc.drain();
    log_before = svc.report_log();
    const ServiceSnapshot snap = svc.snapshot();
    for (rating::NodeId i = 0; i < kN; ++i)
      reps_before[i] = snap.reputation(i);
    svc.crash_stop();
  }
  EXPECT_FALSE(log_before.empty());

  ReputationService svc(cfg);
  ASSERT_TRUE(svc.recovered());
  EXPECT_EQ(svc.report_log(), log_before);
  EXPECT_EQ(svc.metrics().ratings_applied, workload.size());
  const ServiceSnapshot snap = svc.snapshot();
  for (rating::NodeId i = 0; i < kN; ++i)
    EXPECT_EQ(snap.reputation(i), reps_before[i]) << "node " << i;
  svc.stop();
}

TEST_F(RecoveryTest, ConfigMismatchWithStoredStateThrows) {
  {
    ReputationService svc(durable_config());
    ASSERT_TRUE(svc.ingest({1, 2, Score::kPositive, 0}));
    svc.drain();
    svc.stop();
  }
  // num_shards is deliberately NOT enforced (recovery adopts the stored
  // shard-map width after a resize), but num_nodes still is.
  ServiceConfig other = durable_config();
  other.num_nodes = kN + 1;
  EXPECT_THROW(ReputationService svc(other), std::runtime_error);
}

TEST_F(RecoveryTest, ConfigShardCountIsIgnoredWhenStateExists) {
  const std::vector<Rating> workload = collusion_workload(26, kN);
  {
    ReputationService svc(durable_config());
    for (const Rating& r : workload) ASSERT_TRUE(svc.ingest(r));
    svc.force_epoch();
    svc.drain();
    svc.stop();
  }
  // Reopening with a different configured count adopts the stored width.
  ServiceConfig other = durable_config();
  other.num_shards = kShards + 2;
  ReputationService svc(other);
  ASSERT_TRUE(svc.recovered());
  EXPECT_EQ(svc.num_shards(), kShards);
  EXPECT_EQ(svc.metrics().ratings_applied, workload.size());
  svc.stop();
}

TEST_F(RecoveryTest, RecoveryAdoptsResizedShardCount) {
  const std::vector<Rating> workload = collusion_workload(27, kN);
  const std::size_t half = workload.size() / 2;
  {
    ReputationService svc(durable_config());
    for (std::size_t k = 0; k < half; ++k)
      ASSERT_TRUE(svc.ingest(workload[k]));
    svc.drain();
    const ResizeStats rs = svc.resize(kShards + 2);
    EXPECT_GT(rs.keys_moved, 0u);
    for (std::size_t k = half; k < workload.size(); ++k)
      ASSERT_TRUE(svc.ingest(workload[k]));
    svc.force_epoch();
    svc.drain();
    svc.stop();
  }
  // The config still says kShards; the stored map stamps say kShards + 2.
  ReputationService svc(durable_config());
  ASSERT_TRUE(svc.recovered());
  EXPECT_EQ(svc.num_shards(), kShards + 2);
  EXPECT_EQ(svc.metrics().ratings_applied, workload.size());
  EXPECT_EQ(svc.metrics().shard_map_epoch, 1u);
  svc.stop();
}

}  // namespace
}  // namespace p2prep::service
