// ShardMap unit tests: the consistent-hash placement properties the
// elastic-resharding protocol depends on (DESIGN.md "Elastic resharding").
#include "service/shard_map.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace p2prep::service {
namespace {

constexpr std::size_t kNodes = 10000;

TEST(ShardMapTest, PlacementIsAPureFunctionOfShardCount) {
  const ShardMap a(4, kNodes);
  const ShardMap b(4, kNodes);
  for (rating::NodeId id = 0; id < kNodes; ++id)
    ASSERT_EQ(a.owner(id), b.owner(id)) << "node " << id;
}

TEST(ShardMapTest, OwnerIsInRangeAndEveryShardIsNonEmpty) {
  const ShardMap map(8, kNodes);
  std::vector<std::size_t> counts(8, 0);
  for (rating::NodeId id = 0; id < kNodes; ++id) {
    ASSERT_LT(map.owner(id), 8u);
    ++counts[map.owner(id)];
  }
  for (std::size_t s = 0; s < 8; ++s)
    EXPECT_GT(counts[s], 0u) << "shard " << s;
}

TEST(ShardMapTest, GrowMovesKeysOnlyToTheNewShard) {
  const ShardMap from(4, kNodes);
  const ShardMap to(5, kNodes);
  const auto moved = ShardMap::moved_nodes(from, to);
  EXPECT_FALSE(moved.empty());
  for (const rating::NodeId id : moved) {
    // A moved key's new owner is always the added shard; keys never
    // shuffle between pre-existing shards.
    EXPECT_EQ(to.owner(id), 4u) << "node " << id;
  }
  // Everything not in `moved` stays put.
  std::size_t m = 0;
  for (rating::NodeId id = 0; id < kNodes; ++id) {
    if (m < moved.size() && moved[m] == id) {
      ++m;
      continue;
    }
    ASSERT_EQ(from.owner(id), to.owner(id)) << "node " << id;
  }
}

TEST(ShardMapTest, GrowMovesRoughlyOneOverSPlusOne) {
  const ShardMap from(4, kNodes);
  const ShardMap to(5, kNodes);
  const auto moved = ShardMap::moved_nodes(from, to);
  // Expectation is kNodes/5 = 2000; kVirtualPoints = 64 keeps the
  // variance well inside a 2x band.
  EXPECT_GT(moved.size(), kNodes / 10);
  EXPECT_LT(moved.size(), 2 * kNodes / 5);
}

TEST(ShardMapTest, GrowThenShrinkRestoresPlacement) {
  const ShardMap four(4, kNodes);
  const ShardMap eight(8, kNodes);
  const ShardMap four_again(4, kNodes);
  EXPECT_FALSE(ShardMap::moved_nodes(four, eight).empty());
  EXPECT_TRUE(ShardMap::moved_nodes(four, four_again).empty());
}

TEST(ShardMapTest, MovedNodesIsAscendingAndMatchesOwnerDiff) {
  const ShardMap from(2, kNodes);
  const ShardMap to(3, kNodes);
  const auto moved = ShardMap::moved_nodes(from, to);
  for (std::size_t i = 1; i < moved.size(); ++i)
    ASSERT_LT(moved[i - 1], moved[i]);
  std::size_t diff = 0;
  for (rating::NodeId id = 0; id < kNodes; ++id)
    if (from.owner(id) != to.owner(id)) ++diff;
  EXPECT_EQ(moved.size(), diff);
}

TEST(ShardMapTest, SingleOwnerOnlyForOneShard) {
  EXPECT_TRUE(ShardMap(1, kNodes).single_owner());
  EXPECT_FALSE(ShardMap(2, kNodes).single_owner());
  // Degenerate but legal: more shards than nodes still routes every node.
  const ShardMap map(4, 2);
  EXPECT_LT(map.owner(0), 4u);
  EXPECT_LT(map.owner(1), 4u);
}

TEST(ShardMapTest, ZeroShardsThrows) {
  EXPECT_THROW(ShardMap(0, kNodes), std::invalid_argument);
}

TEST(ShardMapTest, OwnersTableMatchesOwner) {
  const ShardMap map(6, 500);
  const auto& owners = map.owners();
  ASSERT_EQ(owners.size(), 500u);
  for (rating::NodeId id = 0; id < 500; ++id)
    ASSERT_EQ(owners[id], map.owner(id));
}

}  // namespace
}  // namespace p2prep::service
