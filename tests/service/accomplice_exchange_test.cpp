// Cross-shard accomplice exchange: a planted accomplice chain whose links
// straddle shard boundaries must be flagged identically at every shard
// width. The workload builds a textbook colluding pair (a, b) — mutual
// frequent positives, mostly-negative complements — plus a chain of
// accomplices b <-> c <-> d who keep their own records clean (outsiders
// rate them positively, so the pair predicates reject (b, c) and (c, d)
// on the complement test) and are reachable only through accomplice
// propagation from the flagged pair. The chain ids are picked so that at
// four shards consecutive links live on different shards: flagging d
// requires the iterated flagged-set exchange to carry c's verdict across
// a shard boundary in a later round, which is exactly the machinery the
// old multi-owner force-off used to disable.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "service/service.h"
#include "service/shard_map.h"

namespace p2prep::service {
namespace {

using rating::NodeId;
using rating::Rating;
using rating::Score;

constexpr std::size_t kN = 32;
constexpr int kBoosts = 30;  // per direction, well above frequency_min

struct ChainIds {
  NodeId a, b, c, d;
};

/// Picks four distinct nodes such that under the 4-shard map every
/// consecutive link of the chain a-b-c-d crosses a shard boundary. The
/// ShardMap is deterministic for a given (shards, nodes), so the same ids
/// produce the same placement inside the service under test.
ChainIds pick_chain_ids() {
  const ShardMap map(4, kN);
  ChainIds ids{0, 0, 0, 0};
  ids.a = 0;
  NodeId next = 1;
  const auto pick_after = [&](NodeId prev) {
    while (map.owner(next) == map.owner(prev)) ++next;
    return next++;
  };
  ids.b = pick_after(ids.a);
  ids.c = pick_after(ids.b);
  ids.d = pick_after(ids.c);
  return ids;
}

/// The planted trace. Every cell is either a chain-link boost (frequent,
/// all positive) or a single outsider rating (infrequent, lands in the
/// complement): negatives onto the colluding pair, positives onto the
/// accomplices, and a one-way positive stream among outsiders so nobody
/// else forms a mutual frequent cell.
std::vector<Rating> chain_workload(const ChainIds& ids) {
  std::vector<Rating> load;
  const auto boost_both = [&](NodeId x, NodeId y) {
    for (int i = 0; i < kBoosts; ++i) {
      load.push_back({x, y, Score::kPositive});
      load.push_back({y, x, Score::kPositive});
    }
  };
  boost_both(ids.a, ids.b);  // the colluding pair
  boost_both(ids.b, ids.c);  // accomplice link, crosses shards at width 4
  boost_both(ids.c, ids.d);  // second link, one more round to reach
  const std::set<NodeId> chain{ids.a, ids.b, ids.c, ids.d};
  std::vector<NodeId> outsiders;
  for (NodeId i = 0; i < kN; ++i)
    if (!chain.count(i)) outsiders.push_back(i);
  for (const NodeId o : outsiders) {
    load.push_back({o, ids.a, Score::kNegative});
    load.push_back({o, ids.b, Score::kNegative});
    load.push_back({o, ids.c, Score::kPositive});
    load.push_back({o, ids.d, Score::kPositive});
  }
  // Honest background: o_k showers o_{k+1} with positives. One-directional,
  // so it creates reputation without mutual frequent cells.
  for (std::size_t k = 0; k + 1 < outsiders.size(); ++k)
    for (int i = 0; i < 10; ++i)
      load.push_back({outsiders[k], outsiders[k + 1], Score::kPositive});
  return load;
}

ServiceConfig make_cfg(std::size_t shards, const std::string& detector) {
  ServiceConfig cfg;
  cfg.num_nodes = kN;
  cfg.num_shards = shards;
  cfg.epoch_ratings = 1u << 30;  // epochs only via force_epoch()
  cfg.detector = detector;
  cfg.detector_config.frequency_min = 10;
  cfg.detector_config.positive_fraction_min = 0.8;
  cfg.detector_config.complement_fraction_max = 0.25;
  cfg.detector_config.high_rep_threshold = 0.05;
  cfg.detector_config.require_mutual = true;
  cfg.detector_config.joint_complement = true;
  cfg.detector_config.flag_accomplices = true;
  return cfg;
}

struct RunResult {
  std::string report_log;
  std::set<NodeId> suspected;
  std::uint64_t exchange_rounds = 0;
};

RunResult run(const ServiceConfig& cfg, const std::vector<Rating>& load) {
  ReputationService svc(cfg);
  for (const Rating& r : load) EXPECT_TRUE(svc.ingest(r));
  svc.force_epoch();
  svc.drain();
  RunResult out;
  out.report_log = svc.report_log();
  const ServiceSnapshot snap = svc.snapshot();
  for (NodeId i = 0; i < kN; ++i)
    if (snap.suspected(i)) out.suspected.insert(i);
  out.exchange_rounds = svc.metrics().accomplice_exchange_rounds;
  svc.stop();
  return out;
}

class AccompliceExchangeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AccompliceExchangeTest, CrossShardChainMatchesSingleShardWalk) {
  const ChainIds ids = pick_chain_ids();
  const std::vector<Rating> load = chain_workload(ids);
  const std::set<NodeId> expected{ids.a, ids.b, ids.c, ids.d};

  const RunResult one = run(make_cfg(1, GetParam()), load);
  // The chain is only reachable through propagation: the pair detector
  // flags (a, b); c and d have clean (positive) complements, so only the
  // accomplice walk can reach them — first c (round 1), then d (round 2).
  ASSERT_EQ(one.suspected, expected);

  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    const RunResult wide = run(make_cfg(shards, GetParam()), load);
    EXPECT_EQ(wide.suspected, one.suspected) << "shards " << shards;
    EXPECT_EQ(wide.report_log, one.report_log) << "shards " << shards;
    // Depth-2 chain: two productive exchange rounds before the fixpoint
    // (the gauge also counts the final empty confirmation round).
    EXPECT_GE(wide.exchange_rounds, 2u) << "shards " << shards;
  }
}

TEST_P(AccompliceExchangeTest, ExchangeDisabledFlagsOnlyThePair) {
  const ChainIds ids = pick_chain_ids();
  const std::vector<Rating> load = chain_workload(ids);
  ServiceConfig cfg = make_cfg(4, GetParam());
  cfg.detector_config.flag_accomplices = false;
  const RunResult r = run(cfg, load);
  // Sanity check on the planting: without propagation the accomplices'
  // clean complements keep them off the report entirely.
  EXPECT_EQ(r.suspected, (std::set<NodeId>{ids.a, ids.b}));
}

INSTANTIATE_TEST_SUITE_P(Detectors, AccompliceExchangeTest,
                         ::testing::Values(std::string("basic"),
                                           std::string("optimized")),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace p2prep::service
