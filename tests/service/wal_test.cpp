#include "service/wal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

namespace p2prep::service {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("p2prep_wal_test_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static rating::Rating make_rating(rating::NodeId rater, rating::NodeId ratee,
                                    rating::Score score, rating::Tick time) {
    rating::Rating r;
    r.rater = rater;
    r.ratee = ratee;
    r.score = score;
    r.time = time;
    return r;
  }

  fs::path dir_;
};

TEST_F(WalTest, RoundTripRatingsAndMarkers) {
  const std::string p = path("a.wal");
  {
    WalWriter w = WalWriter::create(p, 7, 2, 4);
    w.append(WalRecord::make_rating(
        make_rating(1, 2, rating::Score::kPositive, 10)));
    w.append(WalRecord::make_rating(
        make_rating(3, 4, rating::Score::kNegative, 11)));
    w.append(WalRecord::make_marker(5));
    EXPECT_EQ(w.generation(), 7u);
    EXPECT_EQ(w.map_epoch(), 2u);
    EXPECT_EQ(w.map_shards(), 4u);
    EXPECT_EQ(w.records(), 3u);
  }
  const WalReadResult r = read_wal(p);
  ASSERT_TRUE(r.found);
  EXPECT_FALSE(r.truncated_tail);
  EXPECT_EQ(r.generation, 7u);
  EXPECT_EQ(r.map_epoch, 2u);
  EXPECT_EQ(r.num_shards, 4u);
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0].kind, WalRecordKind::kRating);
  EXPECT_EQ(r.records[0].rating.rater, 1u);
  EXPECT_EQ(r.records[0].rating.ratee, 2u);
  EXPECT_EQ(r.records[0].rating.score, rating::Score::kPositive);
  EXPECT_EQ(r.records[0].rating.time, 10u);
  EXPECT_EQ(r.records[1].rating.score, rating::Score::kNegative);
  EXPECT_EQ(r.records[2].kind, WalRecordKind::kEpochMarker);
  EXPECT_EQ(r.records[2].epoch_seq, 5u);
  EXPECT_EQ(r.end_offsets.size(), 3u);
  EXPECT_EQ(r.valid_bytes, r.end_offsets.back());
  EXPECT_EQ(r.valid_bytes, fs::file_size(p));
}

TEST_F(WalTest, MissingFileIsNotFound) {
  const WalReadResult r = read_wal(path("nope.wal"));
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.records.empty());
}

TEST_F(WalTest, TornTailIsTruncatedToValidPrefix) {
  const std::string p = path("torn.wal");
  {
    WalWriter w = WalWriter::create(p, 0, 0, 1);
    w.append(WalRecord::make_rating(
        make_rating(1, 2, rating::Score::kPositive, 1)));
    w.append(WalRecord::make_rating(
        make_rating(2, 3, rating::Score::kPositive, 2)));
  }
  // Chop the last record in half: a crash mid-append.
  const auto full = fs::file_size(p);
  fs::resize_file(p, full - 5);

  const WalReadResult r = read_wal(p);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.truncated_tail);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].rating.rater, 1u);
  EXPECT_EQ(r.valid_bytes, r.end_offsets[0]);
}

TEST_F(WalTest, CorruptPayloadStopsAtTheBadFrame) {
  const std::string p = path("corrupt.wal");
  {
    WalWriter w = WalWriter::create(p, 0, 0, 1);
    w.append(WalRecord::make_rating(
        make_rating(1, 2, rating::Score::kPositive, 1)));
    w.append(WalRecord::make_rating(
        make_rating(2, 3, rating::Score::kPositive, 2)));
    w.append(WalRecord::make_rating(
        make_rating(3, 4, rating::Score::kPositive, 3)));
  }
  const WalReadResult clean = read_wal(p);
  ASSERT_EQ(clean.records.size(), 3u);

  // Flip one payload byte inside record 1: its CRC must reject it and
  // record 2 (physically intact) must not be surfaced either.
  std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(static_cast<std::streamoff>(clean.end_offsets[0]) + 10);
  f.put('\xff');
  f.close();

  const WalReadResult r = read_wal(p);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.truncated_tail);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.valid_bytes, clean.end_offsets[0]);
}

TEST_F(WalTest, RotateBumpsGenerationAndEmptiesTheLog) {
  const std::string p = path("rot.wal");
  WalWriter w = WalWriter::create(p, 3, 5, 2);
  w.append(WalRecord::make_rating(
      make_rating(1, 2, rating::Score::kPositive, 1)));
  w.rotate();
  EXPECT_EQ(w.generation(), 4u);
  EXPECT_EQ(w.records(), 0u);
  // A plain rotate keeps the shard-map stamp.
  EXPECT_EQ(w.map_epoch(), 5u);
  EXPECT_EQ(w.map_shards(), 2u);
  w.append(WalRecord::make_marker(9));

  const WalReadResult r = read_wal(p);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.generation, 4u);
  EXPECT_EQ(r.map_epoch, 5u);
  EXPECT_EQ(r.num_shards, 2u);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].epoch_seq, 9u);
}

TEST_F(WalTest, RotateWithNewMapRestampsTheHeader) {
  const std::string p = path("restamp.wal");
  WalWriter w = WalWriter::create(p, 0, 0, 4);
  w.append(WalRecord::make_map_change(1, 8));
  w.rotate(1, 8);  // the resize-commit rotate
  EXPECT_EQ(w.generation(), 1u);
  EXPECT_EQ(w.map_epoch(), 1u);
  EXPECT_EQ(w.map_shards(), 8u);

  const WalReadResult r = read_wal(p);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.map_epoch, 1u);
  EXPECT_EQ(r.num_shards, 8u);
  EXPECT_TRUE(r.records.empty());  // the fence marker did not survive
}

TEST_F(WalTest, MapChangeRecordRoundTrips) {
  const std::string p = path("fence.wal");
  {
    WalWriter w = WalWriter::create(p, 2, 3, 4);
    w.append(WalRecord::make_rating(
        make_rating(1, 2, rating::Score::kPositive, 1)));
    w.append(WalRecord::make_map_change(4, 6));
  }
  const WalReadResult r = read_wal(p);
  ASSERT_TRUE(r.found);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[1].kind, WalRecordKind::kShardMapChange);
  EXPECT_EQ(r.records[1].epoch_seq, 4u);
  EXPECT_EQ(r.records[1].num_shards, 6u);
}

TEST_F(WalTest, ResumeTruncatesDiscardedSuffixAndAppends) {
  const std::string p = path("resume.wal");
  WalReadResult before;
  {
    WalWriter w = WalWriter::create(p, 2, 1, 2);
    w.append(WalRecord::make_rating(
        make_rating(1, 2, rating::Score::kPositive, 1)));
    w.append(WalRecord::make_marker(1));  // recovery will discard this
    before = read_wal(p);
  }
  ASSERT_EQ(before.records.size(), 2u);

  {
    WalWriter w = WalWriter::resume(p, 2, 1, 2, before.end_offsets[0], 1);
    EXPECT_EQ(w.generation(), 2u);
    EXPECT_EQ(w.records(), 1u);
    w.append(WalRecord::make_rating(
        make_rating(5, 6, rating::Score::kNegative, 2)));
  }
  const WalReadResult after = read_wal(p);
  ASSERT_EQ(after.records.size(), 2u);
  EXPECT_EQ(after.records[0].kind, WalRecordKind::kRating);
  EXPECT_EQ(after.records[1].kind, WalRecordKind::kRating);
  EXPECT_EQ(after.records[1].rating.rater, 5u);
}

TEST_F(WalTest, CheckpointRoundTrip) {
  ShardCheckpoint ckpt;
  ckpt.wal_generation = 4;
  ckpt.wal_records_applied = 17;
  ckpt.map_epoch = 6;
  ckpt.map_num_shards = 8;
  ckpt.epochs_completed = 3;
  ckpt.applied_total = 120;
  ckpt.applied_since_epoch = 7;
  ckpt.last_epoch_tick = 99;
  ckpt.engine_blob = std::string("\x01\x02\x00\x03", 4);
  ckpt.suppressed = {2, 9};
  ckpt.detected = {2, 9, 11};
  rating::PairStats stats;
  stats.positive = 5;
  stats.negative = 1;
  stats.total = 6;
  ckpt.cells.push_back({3, 8, stats});

  const std::string p = path("shard.ckpt");
  ASSERT_TRUE(write_checkpoint(p, ckpt));
  const auto loaded = read_checkpoint(p);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->wal_generation, 4u);
  EXPECT_EQ(loaded->wal_records_applied, 17u);
  EXPECT_EQ(loaded->map_epoch, 6u);
  EXPECT_EQ(loaded->map_num_shards, 8u);
  EXPECT_EQ(loaded->epochs_completed, 3u);
  EXPECT_EQ(loaded->applied_total, 120u);
  EXPECT_EQ(loaded->applied_since_epoch, 7u);
  EXPECT_EQ(loaded->last_epoch_tick, 99u);
  EXPECT_EQ(loaded->engine_blob, ckpt.engine_blob);
  EXPECT_EQ(loaded->suppressed, ckpt.suppressed);
  EXPECT_EQ(loaded->detected, ckpt.detected);
  ASSERT_EQ(loaded->cells.size(), 1u);
  EXPECT_EQ(loaded->cells[0].ratee, 3u);
  EXPECT_EQ(loaded->cells[0].rater, 8u);
  EXPECT_EQ(loaded->cells[0].stats.positive, 5u);
  EXPECT_EQ(loaded->cells[0].stats.total, 6u);
}

TEST_F(WalTest, MissingOrCorruptCheckpointIsRejected) {
  EXPECT_FALSE(read_checkpoint(path("nope.ckpt")).has_value());

  ShardCheckpoint ckpt;
  ckpt.applied_total = 10;
  const std::string p = path("bad.ckpt");
  ASSERT_TRUE(write_checkpoint(p, ckpt));

  // Flip a byte past the header: CRC must reject the whole file.
  std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(20);
  f.put('\xff');
  f.close();
  EXPECT_FALSE(read_checkpoint(p).has_value());
}

TEST_F(WalTest, CheckpointWriteLeavesNoTempFileBehind) {
  ShardCheckpoint ckpt;
  const std::string p = path("atomic.ckpt");
  ASSERT_TRUE(write_checkpoint(p, ckpt));
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);  // only the checkpoint itself
}

}  // namespace
}  // namespace p2prep::service
