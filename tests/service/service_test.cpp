#include "service/service.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/basic_detector.h"
#include "core/optimized_detector.h"
#include "managers/incremental.h"
#include "reputation/summation.h"
#include "util/rng.h"

namespace p2prep::service {
namespace {

using rating::Rating;
using rating::Score;

ServiceConfig base_config(std::size_t n, std::size_t shards) {
  ServiceConfig cfg;
  cfg.num_nodes = n;
  cfg.num_shards = shards;
  cfg.epoch_ratings = 1u << 30;  // epochs driven by force_epoch()
  cfg.detector_config.positive_fraction_min = 0.8;
  cfg.detector_config.complement_fraction_max = 0.2;
  cfg.detector_config.frequency_min = 20;
  cfg.detector_config.high_rep_threshold = 0.05;
  return cfg;
}

/// The incremental-manager test workload: colluding pairs (0,1) and (2,3)
/// plus random background ratings that leave the colluders' complements
/// negative and everyone else well-rated.
std::vector<Rating> collusion_workload(std::uint64_t seed, std::size_t n) {
  std::vector<Rating> out;
  util::Rng rng(seed);
  rating::Tick t = 0;
  for (int k = 0; k < 40; ++k) {
    out.push_back({0, 1, Score::kPositive, t++});
    out.push_back({1, 0, Score::kPositive, t++});
    out.push_back({2, 3, Score::kPositive, t++});
    out.push_back({3, 2, Score::kPositive, t++});
  }
  for (rating::NodeId rater = 0; rater < n; ++rater) {
    for (int k = 0; k < 5; ++k) {
      auto ratee = static_cast<rating::NodeId>(rng.next_below(n));
      if (ratee == rater) ratee = static_cast<rating::NodeId>((ratee + 1) % n);
      out.push_back({rater, ratee,
                     rng.chance(ratee < 4 ? 0.05 : 0.85) ? Score::kPositive
                                                         : Score::kNegative,
                     t++});
    }
  }
  return out;
}

TEST(ServiceTest, RejectsInvalidRatingsAndCountsThem) {
  ReputationService svc(base_config(10, 2));
  EXPECT_FALSE(svc.ingest({3, 3, Score::kPositive, 0}));   // self-rating
  EXPECT_FALSE(svc.ingest({3, 10, Score::kPositive, 0}));  // ratee range
  EXPECT_FALSE(svc.ingest({10, 3, Score::kPositive, 0}));  // rater range
  EXPECT_TRUE(svc.ingest({3, 4, Score::kPositive, 0}));
  svc.drain();
  const ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.ratings_rejected, 3u);
  EXPECT_EQ(m.ratings_accepted, 1u);
  EXPECT_EQ(m.ratings_applied, 1u);
}

TEST(ServiceTest, IngestAfterStopReturnsFalse) {
  ReputationService svc(base_config(10, 1));
  EXPECT_TRUE(svc.ingest({1, 2, Score::kPositive, 0}));
  svc.stop();
  EXPECT_FALSE(svc.ingest({1, 2, Score::kPositive, 1}));
}

TEST(ServiceTest, PerShardScopeFlagsSameShardColluders) {
  constexpr std::size_t kN = 40;
  ServiceConfig cfg = base_config(kN, 2);
  cfg.epoch_scope = EpochScope::kPerShard;
  ReputationService svc(cfg);

  // Per-shard detection can only see a pair whose members share a shard.
  rating::NodeId c0 = 0;
  while (svc.shard_of(c0) != 0) ++c0;
  rating::NodeId c1 = c0 + 1;
  while (svc.shard_of(c1) != 0 || c1 == c0) ++c1;
  ASSERT_LT(c1, kN);

  rating::Tick t = 0;
  for (int k = 0; k < 30; ++k) {
    ASSERT_TRUE(svc.ingest({c0, c1, Score::kPositive, t++}));
    ASSERT_TRUE(svc.ingest({c1, c0, Score::kPositive, t++}));
  }
  // Five outsiders give one negative each: the complement evidence.
  int outsiders = 0;
  for (rating::NodeId i = 0; i < kN && outsiders < 5; ++i) {
    if (i == c0 || i == c1) continue;
    ASSERT_TRUE(svc.ingest({i, c0, Score::kNegative, t++}));
    ASSERT_TRUE(svc.ingest({i, c1, Score::kNegative, t++}));
    ++outsiders;
  }
  // Everyone else becomes high-reputed through infrequent positives.
  for (rating::NodeId i = 0; i < kN; ++i) {
    if (i == c0 || i == c1) continue;
    auto rater = static_cast<rating::NodeId>((i + 1) % kN);
    while (rater == i || rater == c0 || rater == c1)
      rater = static_cast<rating::NodeId>((rater + 1) % kN);
    for (int k = 0; k < 10; ++k)
      ASSERT_TRUE(svc.ingest({rater, i, Score::kPositive, t++}));
  }

  svc.force_epoch();
  svc.drain();

  const ServiceSnapshot snap = svc.snapshot();
  EXPECT_TRUE(snap.suspected(c0));
  EXPECT_TRUE(snap.suspected(c1));
  // Suppression (kReset) zeroed the colluders' reputations.
  EXPECT_EQ(snap.reputation(c0), 0.0);
  EXPECT_EQ(snap.reputation(c1), 0.0);
  std::size_t suspects = 0;
  for (rating::NodeId i = 0; i < kN; ++i)
    if (snap.suspected(i)) ++suspects;
  EXPECT_EQ(suspects, 2u);

  const std::string log = svc.report_log();
  EXPECT_NE(log.find("shard 0"), std::string::npos);
  EXPECT_NE(log.find("pairs=1"), std::string::npos);

  const ServiceMetrics m = svc.metrics();
  EXPECT_GE(m.epochs_completed, 2u);  // one forced epoch per shard
  EXPECT_EQ(m.detections_total, 1u);
}

class GlobalEquivalenceTest : public ::testing::TestWithParam<std::string> {};

// The cross-shard global sweep must reproduce a single centralized
// manager + detector byte for byte: same flagged pairs, same evidence
// values in the report text, same post-suppression reputations.
TEST_P(GlobalEquivalenceTest, MatchesSingleManagerReference) {
  constexpr std::size_t kN = 50;
  ServiceConfig cfg = base_config(kN, 3);
  cfg.detector = GetParam();
  ReputationService svc(cfg);

  // Accomplice propagation stays on across shards (the cross-shard
  // flagged-set exchange); the single-manager reference runs the core
  // detectors' own walk with the same config and must agree.
  core::DetectorConfig ref_cfg = svc.config().detector_config;
  ASSERT_TRUE(ref_cfg.flag_accomplices);
  reputation::SummationEngine ref_engine(kN, /*normalize=*/false);
  managers::IncrementalCentralizedManager ref(kN, ref_engine, ref_cfg);
  std::unique_ptr<core::CollusionDetector> ref_detector;
  if (GetParam() == "basic")
    ref_detector = std::make_unique<core::BasicCollusionDetector>(ref_cfg);
  else
    ref_detector = std::make_unique<core::OptimizedCollusionDetector>(ref_cfg);

  const std::vector<Rating> workload = collusion_workload(11, kN);
  std::string expected_log;
  std::uint64_t expected_detections = 0;

  const std::size_t chunk = workload.size() / 3 + 1;
  std::size_t fed = 0;
  while (fed < workload.size()) {
    const std::size_t end = std::min(fed + chunk, workload.size());
    for (; fed < end; ++fed) {
      ASSERT_TRUE(svc.ingest(workload[fed]));
      ASSERT_TRUE(ref.ingest(workload[fed]));
    }
    const std::uint64_t seq = svc.force_epoch();
    svc.drain();

    ref.update_reputations();
    const core::DetectionReport ref_report = ref.run_detection(
        *ref_detector, managers::CentralizedManager::SuppressionMode::kReset);
    expected_log += format_epoch_report("global", seq, ref_report);
    expected_detections += ref_report.pairs.size();
  }
  svc.stop();

  EXPECT_EQ(svc.report_log(), expected_log);
  EXPECT_EQ(svc.metrics().detections_total, expected_detections);
  EXPECT_GT(expected_detections, 0u);

  const ServiceSnapshot snap = svc.snapshot();
  for (rating::NodeId i = 0; i < kN; ++i) {
    EXPECT_EQ(snap.reputation(i), ref_engine.detection_reputation(i))
        << "node " << i;
    EXPECT_EQ(snap.suspected(i), ref.detected().contains(i)) << "node " << i;
  }
  EXPECT_TRUE(snap.suspected(0) && snap.suspected(1));
  EXPECT_TRUE(snap.suspected(2) && snap.suspected(3));
}

INSTANTIATE_TEST_SUITE_P(Detectors, GlobalEquivalenceTest,
                         ::testing::Values(std::string("basic"),
                                           std::string("optimized")),
                         [](const auto& info) {
                           return info.param == "basic" ? "Basic"
                                                        : "Optimized";
                         });

TEST(ServiceTest, GlobalRatingCountCadenceFiresEpochs) {
  constexpr std::size_t kN = 30;
  ServiceConfig cfg = base_config(kN, 2);
  cfg.epoch_ratings = 50;
  ReputationService svc(cfg);
  rating::Tick t = 0;
  for (int k = 0; k < 120; ++k) {
    const auto rater = static_cast<rating::NodeId>(k % kN);
    const auto ratee = static_cast<rating::NodeId>((k + 7) % kN);
    if (rater == ratee) continue;
    ASSERT_TRUE(svc.ingest({rater, ratee, Score::kPositive, t++}));
  }
  svc.drain();
  const ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.epochs_completed, 2u);  // 120 accepted / 50
  EXPECT_EQ(svc.snapshot().min_epoch(), 2u);
}

TEST(ServiceTest, VirtualTimeCadenceFiresEpochs) {
  ServiceConfig cfg = base_config(20, 2);
  cfg.epoch_ratings = 0;
  cfg.epoch_ticks = 10;
  ReputationService svc(cfg);
  for (rating::Tick t = 1; t <= 35; ++t) {
    const auto rater = static_cast<rating::NodeId>(t % 20);
    const auto ratee = static_cast<rating::NodeId>((t + 3) % 20);
    ASSERT_TRUE(svc.ingest({rater, ratee, Score::kPositive, t}));
  }
  svc.drain();
  // Epochs at the first ratings with tick >= 10, >= 20(+..), >= 30.
  EXPECT_EQ(svc.metrics().epochs_completed, 3u);
}

TEST(ServiceTest, DropOldestPreservesConservation) {
  ServiceConfig cfg = base_config(20, 2);
  cfg.queue_capacity = 2;
  cfg.overflow = OverflowPolicy::kDropOldest;
  cfg.epoch_scope = EpochScope::kPerShard;
  ReputationService svc(cfg);
  for (int k = 0; k < 2000; ++k) {
    const auto rater = static_cast<rating::NodeId>(k % 20);
    const auto ratee = static_cast<rating::NodeId>((k + 11) % 20);
    if (rater == ratee) continue;
    ASSERT_TRUE(svc.ingest({rater, ratee, Score::kPositive,
                            static_cast<rating::Tick>(k)}));
  }
  svc.drain();
  const ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.ratings_applied + m.ratings_dropped, m.ratings_accepted);
  EXPECT_EQ(m.queue_depth, 0u);
}

TEST(ServiceTest, MetricsDumpContainsAllSections) {
  ReputationService svc(base_config(10, 1));
  ASSERT_TRUE(svc.ingest({1, 2, Score::kPositive, 0}));
  svc.force_epoch();
  svc.drain();
  const std::string dump = svc.metrics().to_string();
  EXPECT_NE(dump.find("ingest:"), std::string::npos);
  EXPECT_NE(dump.find("epochs:"), std::string::npos);
  EXPECT_NE(dump.find("wal:"), std::string::npos);
}

TEST(ServiceTest, InvalidConfigThrows) {
  ServiceConfig cfg;  // num_nodes == 0
  EXPECT_THROW(ReputationService svc(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace p2prep::service
