// Multi-threaded stress over the service's full surface: concurrent
// producers, a snapshot/metrics poller and epoch forcing, in both epoch
// scopes. These tests are the designated TSan workload
// (tools/run_tsan_service.sh builds with P2PREP_SANITIZE=thread and runs
// ctest -R ServiceConcurrency); the assertions themselves check the
// ingest-conservation invariants.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "service/service.h"

namespace p2prep::service {
namespace {

using rating::Score;

constexpr std::size_t kN = 30;
constexpr int kProducers = 3;
constexpr int kPerProducer = 400;

ServiceConfig stress_config(EpochScope scope) {
  ServiceConfig cfg;
  cfg.num_nodes = kN;
  cfg.num_shards = 2;
  cfg.queue_capacity = 64;
  cfg.epoch_scope = scope;
  cfg.epoch_ratings = 150;
  cfg.detector_config.frequency_min = 20;
  cfg.record_reports = false;  // unbounded log growth is pointless here
  return cfg;
}

void run_stress(ReputationService& svc) {
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> sent{0};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&svc, &sent, p] {
      for (int k = 0; k < kPerProducer; ++k) {
        const auto rater = static_cast<rating::NodeId>((p * 7 + k) % kN);
        auto ratee = static_cast<rating::NodeId>((p * 11 + k * 3 + 1) % kN);
        if (ratee == rater) ratee = static_cast<rating::NodeId>((ratee + 1) % kN);
        if (svc.ingest({rater, ratee,
                        k % 3 == 0 ? Score::kNegative : Score::kPositive,
                        static_cast<rating::Tick>(k)}))
          sent.fetch_add(1);
      }
    });
  }

  std::thread poller([&svc, &done] {
    std::uint64_t polls = 0;
    while (!done.load()) {
      const ServiceSnapshot snap = svc.snapshot();
      double sum = 0.0;
      for (rating::NodeId i = 0; i < kN; ++i) sum += snap.reputation(i);
      (void)sum;
      (void)svc.metrics();  // exercise the metrics path under contention
      if (++polls % 16 == 0) svc.force_epoch();
      std::this_thread::yield();
    }
  });

  for (auto& t : producers) t.join();
  done.store(true);
  poller.join();
  svc.force_epoch();  // heavy dropping may starve the cadence trigger
  svc.drain();

  const ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.ratings_accepted, sent.load());
  EXPECT_EQ(m.ratings_applied + m.ratings_dropped, m.ratings_accepted);
  EXPECT_EQ(m.queue_depth, 0u);
  EXPECT_GT(m.epochs_completed, 0u);
  svc.stop();
}

TEST(ServiceConcurrencyTest, GlobalScopeUnderContention) {
  ReputationService svc(stress_config(EpochScope::kGlobal));
  run_stress(svc);
}

TEST(ServiceConcurrencyTest, PerShardScopeUnderContention) {
  ReputationService svc(stress_config(EpochScope::kPerShard));
  run_stress(svc);
}

TEST(ServiceConcurrencyTest, PerShardDropOldestUnderContention) {
  ServiceConfig cfg = stress_config(EpochScope::kPerShard);
  cfg.queue_capacity = 8;
  cfg.overflow = OverflowPolicy::kDropOldest;
  ReputationService svc(cfg);
  run_stress(svc);
}

TEST(ServiceConcurrencyTest, StopRacesWithProducers) {
  ReputationService svc(stress_config(EpochScope::kGlobal));
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&svc, p] {
      for (int k = 0; k < kPerProducer; ++k) {
        const auto rater = static_cast<rating::NodeId>((p + k) % kN);
        const auto ratee = static_cast<rating::NodeId>((p + k + 1) % kN);
        if (!svc.ingest({rater, ratee, Score::kPositive,
                         static_cast<rating::Tick>(k)}))
          return;  // service stopped underneath us — expected
      }
    });
  }
  svc.stop();
  for (auto& t : producers) t.join();
  const ServiceMetrics m = svc.metrics();
  EXPECT_LE(m.ratings_applied, m.ratings_accepted);
}

}  // namespace
}  // namespace p2prep::service
