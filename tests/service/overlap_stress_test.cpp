// Detection/ingest overlap soak: concurrent producers keep the queues hot
// while the parallel global epoch scans frozen state, so workers are
// continuously flipped between applying ratings directly and buffering
// them into the per-slot pending lists; a resize churner and a
// snapshot/metrics poller race against both. These tests are part of the
// designated TSan workload (tools/run_static_analysis.sh tsan runs ctest
// -R '...|OverlapStress|...'); the assertions check ingest conservation —
// every accepted rating is either applied (possibly via a pending buffer)
// or accounted as dropped, never lost in an overlap window.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "service/service.h"

namespace p2prep::service {
namespace {

namespace fs = std::filesystem;
using rating::Score;

constexpr std::size_t kN = 40;
constexpr int kProducers = 3;
constexpr int kPerProducer = 600;

ServiceConfig overlap_config() {
  ServiceConfig cfg;
  cfg.num_nodes = kN;
  cfg.num_shards = 4;
  cfg.queue_capacity = 64;
  cfg.epoch_scope = EpochScope::kGlobal;
  cfg.epoch_ratings = 120;  // frequent epochs so overlap windows recur
  cfg.parallel_epoch = true;
  cfg.epoch_overlap = true;
  cfg.epoch_scan_threads = 4;
  cfg.detector_config.frequency_min = 20;
  cfg.record_reports = false;
  return cfg;
}

void run_soak(ReputationService& svc, bool resize_churn) {
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> sent{0};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&svc, &sent, p] {
      for (int k = 0; k < kPerProducer; ++k) {
        const auto rater = static_cast<rating::NodeId>((p * 13 + k) % kN);
        auto ratee = static_cast<rating::NodeId>((p * 17 + k * 5 + 1) % kN);
        if (ratee == rater)
          ratee = static_cast<rating::NodeId>((ratee + 1) % kN);
        if (svc.ingest({rater, ratee,
                        k % 4 == 0 ? Score::kNegative : Score::kPositive,
                        static_cast<rating::Tick>(k)}))
          sent.fetch_add(1);
      }
    });
  }

  std::thread poller([&svc, &done] {
    std::uint64_t polls = 0;
    while (!done.load()) {
      const ServiceSnapshot snap = svc.snapshot();
      double sum = 0.0;
      for (rating::NodeId i = 0; i < kN; ++i) sum += snap.reputation(i);
      (void)sum;
      (void)svc.metrics();
      if (++polls % 8 == 0) svc.force_epoch();
      std::this_thread::yield();
    }
  });

  std::thread resizer;
  if (resize_churn) {
    resizer = std::thread([&svc, &done] {
      const std::size_t widths[] = {2, 3, 4};
      std::size_t w = 0;
      while (!done.load()) {
        (void)svc.resize(widths[w++ % 3]);
        std::this_thread::yield();
      }
    });
  }

  for (auto& t : producers) t.join();
  done.store(true);
  poller.join();
  if (resizer.joinable()) resizer.join();
  svc.force_epoch();
  svc.drain();

  const ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.ratings_accepted, sent.load());
  EXPECT_EQ(m.ratings_applied + m.ratings_dropped, m.ratings_accepted);
  EXPECT_EQ(m.queue_depth, 0u);
  EXPECT_GT(m.epochs_completed, 0u);
  EXPECT_GE(m.epoch_scan_threads, 2u);
  svc.stop();
}

TEST(OverlapStressTest, IngestWhileScanning) {
  ReputationService svc(overlap_config());
  run_soak(svc, /*resize_churn=*/false);
}

TEST(OverlapStressTest, IngestWhileScanningWithResizeChurn) {
  ReputationService svc(overlap_config());
  run_soak(svc, /*resize_churn=*/true);
}

TEST(OverlapStressTest, OverlapWithDurableCheckpoints) {
  // Checkpoint epochs are fenced (never overlapped), so this run
  // interleaves overlapped epochs with WAL-rotating ones under load.
  const fs::path dir =
      fs::temp_directory_path() / "p2prep_overlap_stress_ckpt";
  fs::remove_all(dir);
  {
    ServiceConfig cfg = overlap_config();
    cfg.wal_dir = dir.string();
    cfg.checkpoint_every_epochs = 2;
    ReputationService svc(cfg);
    run_soak(svc, /*resize_churn=*/false);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace p2prep::service
