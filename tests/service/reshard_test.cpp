// Elastic-resharding tests: online resize() under live traffic must leave
// detection reports byte-identical to a never-resized run, survive crashes
// inside the handoff window, and reject configurations it cannot serve
// (DESIGN.md "Elastic resharding").
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/service.h"
#include "service/wal.h"
#include "util/rng.h"

namespace p2prep::service {
namespace {

namespace fs = std::filesystem;
using rating::NodeId;
using rating::Rating;
using rating::Score;

constexpr std::size_t kN = 60;

std::vector<Rating> reshard_workload(std::uint64_t seed) {
  std::vector<Rating> out;
  util::Rng rng(seed);
  rating::Tick t = 0;
  for (int k = 0; k < 45; ++k) {
    out.push_back({0, 1, Score::kPositive, t++});
    out.push_back({1, 0, Score::kPositive, t++});
    out.push_back({2, 3, Score::kPositive, t++});
    out.push_back({3, 2, Score::kPositive, t++});
  }
  for (NodeId rater = 0; rater < kN; ++rater) {
    for (int k = 0; k < 6; ++k) {
      auto ratee = static_cast<NodeId>(rng.next_below(kN));
      if (ratee == rater) ratee = static_cast<NodeId>((ratee + 1) % kN);
      out.push_back({rater, ratee,
                     rng.chance(ratee < 4 ? 0.05 : 0.85) ? Score::kPositive
                                                         : Score::kNegative,
                     t++});
    }
  }
  return out;
}

ServiceConfig reshard_config(std::size_t shards) {
  ServiceConfig cfg;
  cfg.num_nodes = kN;
  cfg.num_shards = shards;
  cfg.epoch_ratings = 120;  // natural cadence epochs across the stream
  cfg.detector_config.positive_fraction_min = 0.8;
  cfg.detector_config.complement_fraction_max = 0.2;
  cfg.detector_config.frequency_min = 20;
  cfg.detector_config.high_rep_threshold = 0.05;
  return cfg;
}

struct RunResult {
  std::string report_log;
  std::vector<double> reputations;
  std::vector<bool> suspected;

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

RunResult capture(const ReputationService& svc) {
  RunResult out;
  out.report_log = svc.report_log();
  const ServiceSnapshot snap = svc.snapshot();
  out.reputations.resize(kN);
  out.suspected.resize(kN);
  for (NodeId i = 0; i < kN; ++i) {
    out.reputations[i] = snap.reputation(i);
    out.suspected[i] = snap.suspected(i);
  }
  return out;
}

/// Replays the whole workload without any resize and captures the result.
RunResult static_run(std::size_t shards, const std::vector<Rating>& load) {
  ReputationService svc(reshard_config(shards));
  for (const Rating& r : load) EXPECT_TRUE(svc.ingest(r));
  svc.force_epoch();
  svc.drain();
  RunResult out = capture(svc);
  svc.stop();
  return out;
}

TEST(ReshardTest, GrowMidStreamKeepsReportsByteIdentical) {
  const auto load = reshard_workload(61);
  const RunResult expected = static_run(2, load);
  ASSERT_FALSE(expected.report_log.empty());

  ReputationService svc(reshard_config(2));
  const std::size_t third = load.size() / 3;
  for (std::size_t k = 0; k < third; ++k) ASSERT_TRUE(svc.ingest(load[k]));
  const ResizeStats rs = svc.resize(4);
  EXPECT_EQ(rs.num_shards, 4u);
  EXPECT_GT(rs.keys_moved, 0u);
  EXPECT_EQ(svc.num_shards(), 4u);
  for (std::size_t k = third; k < load.size(); ++k)
    ASSERT_TRUE(svc.ingest(load[k]));
  svc.force_epoch();
  svc.drain();
  EXPECT_EQ(capture(svc), expected);
  svc.stop();
}

TEST(ReshardTest, ShrinkMidStreamKeepsReportsByteIdentical) {
  const auto load = reshard_workload(62);
  const RunResult expected = static_run(4, load);

  ReputationService svc(reshard_config(4));
  const std::size_t half = load.size() / 2;
  for (std::size_t k = 0; k < half; ++k) ASSERT_TRUE(svc.ingest(load[k]));
  const ResizeStats rs = svc.resize(2);
  EXPECT_EQ(rs.num_shards, 2u);
  EXPECT_GT(rs.keys_moved, 0u);
  for (std::size_t k = half; k < load.size(); ++k)
    ASSERT_TRUE(svc.ingest(load[k]));
  svc.force_epoch();
  svc.drain();
  EXPECT_EQ(capture(svc), expected);
  svc.stop();
}

TEST(ReshardTest, ResizeToSameCountIsANoOp) {
  ReputationService svc(reshard_config(3));
  ASSERT_TRUE(svc.ingest({1, 2, Score::kPositive, 0}));
  const ResizeStats rs = svc.resize(3);
  EXPECT_EQ(rs.num_shards, 3u);
  EXPECT_EQ(rs.keys_moved, 0u);
  EXPECT_EQ(svc.metrics().resizes_completed, 0u);
  svc.stop();
}

TEST(ReshardTest, MetricsExposeShardMapGauges) {
  const auto load = reshard_workload(63);
  ReputationService svc(reshard_config(2));
  for (std::size_t k = 0; k < load.size() / 2; ++k)
    ASSERT_TRUE(svc.ingest(load[k]));

  ServiceMetrics before = svc.metrics();
  EXPECT_EQ(before.current_shard_count, 2u);
  EXPECT_EQ(before.shard_map_epoch, 0u);
  EXPECT_EQ(before.resizes_completed, 0u);

  const ResizeStats rs = svc.resize(4);
  const ServiceMetrics after = svc.metrics();
  EXPECT_EQ(after.current_shard_count, 4u);
  EXPECT_EQ(after.shard_map_epoch, 1u);
  EXPECT_EQ(after.resizes_completed, 1u);
  EXPECT_EQ(after.keys_moved_last_resize, rs.keys_moved);
  EXPECT_GT(after.last_resize_ms, 0.0);
  // The gauges render in the text dump the CLI prints.
  EXPECT_NE(after.to_string().find("shards: count=4"), std::string::npos);
  svc.drain();
  svc.stop();
}

TEST(ReshardTest, EpochCountersSurviveAResize) {
  const auto load = reshard_workload(64);
  ReputationService svc(reshard_config(2));
  for (const Rating& r : load) ASSERT_TRUE(svc.ingest(r));
  svc.drain();
  const ServiceMetrics before = svc.metrics();
  ASSERT_GT(before.epochs_completed, 0u);

  svc.resize(5);
  const ServiceMetrics after = svc.metrics();
  // Applied/epoch totals are service-lifetime counters; the handoff must
  // not reset them even though shard instances were reshuffled.
  EXPECT_EQ(after.ratings_applied, before.ratings_applied);
  EXPECT_EQ(after.epochs_completed, before.epochs_completed);
  svc.stop();
}

// --- Rejected configurations ----------------------------------------------

TEST(ReshardTest, PerShardScopeCannotResize) {
  ServiceConfig cfg = reshard_config(2);
  cfg.epoch_scope = EpochScope::kPerShard;
  ReputationService svc(cfg);
  EXPECT_THROW(svc.resize(4), std::invalid_argument);
  svc.stop();
}

TEST(ReshardTest, ZeroShardsIsRejected) {
  ReputationService svc(reshard_config(2));
  EXPECT_THROW(svc.resize(0), std::invalid_argument);
  svc.stop();
}

TEST(ReshardTest, GroupDetectorCannotGrowPastOneShard) {
  ServiceConfig cfg = reshard_config(1);
  cfg.detector = "group";
  ReputationService svc(cfg);
  EXPECT_THROW(svc.resize(2), std::invalid_argument);
  EXPECT_EQ(svc.num_shards(), 1u);
  svc.stop();
}

TEST(ReshardTest, ResizeAfterStopThrows) {
  ReputationService svc(reshard_config(2));
  svc.stop();
  EXPECT_THROW(svc.resize(4), std::runtime_error);
}

// --- Accomplice propagation vs the shard map (regression) ------------------
// The cross-shard flagged-set exchange made accomplice propagation
// map-agnostic: it stays on at any shard count, the constructor never
// forces it off, and resize() no longer rejects multi-owner targets.

TEST(ReshardTest, AccomplicePropagationSurvivesGrowToMultiOwnerMap) {
  ServiceConfig cfg = reshard_config(1);
  cfg.detector_config.flag_accomplices = true;
  ReputationService svc(cfg);
  ASSERT_TRUE(svc.ingest({1, 2, Score::kPositive, 0}));
  svc.drain();
  EXPECT_NO_THROW(svc.resize(2));
  EXPECT_EQ(svc.num_shards(), 2u);
  EXPECT_TRUE(svc.config().detector_config.flag_accomplices);
  svc.stop();
}

TEST(ReshardTest, MultiOwnerMapKeepsAccomplicePropagationEnabled) {
  ServiceConfig cfg = reshard_config(2);
  cfg.detector_config.flag_accomplices = true;
  ReputationService svc(cfg);
  ASSERT_TRUE(svc.ingest({1, 2, Score::kPositive, 0}));
  svc.drain();
  EXPECT_TRUE(svc.config().detector_config.flag_accomplices);
  EXPECT_NO_THROW(svc.resize(4));
  svc.stop();
}

// --- Crash inside the handoff window ---------------------------------------

class ReshardCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("p2prep_reshard_crash_" + std::string(::testing::UnitTest::
                                                      GetInstance()
                                                          ->current_test_info()
                                                          ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] ServiceConfig durable(std::size_t shards) const {
    ServiceConfig cfg = reshard_config(shards);
    cfg.wal_dir = dir_.string();
    return cfg;
  }

  fs::path dir_;
};

TEST_F(ReshardCrashTest, FenceMarkerAtWalTailIsStrippedOnRecovery) {
  const auto load = reshard_workload(65);
  const std::size_t half = load.size() / 2;
  {
    ReputationService svc(durable(3));
    for (std::size_t k = 0; k < half; ++k) ASSERT_TRUE(svc.ingest(load[k]));
    svc.drain();
    svc.crash_stop();
  }
  // Simulate a crash after the workers logged their resize fence but
  // before the commit rotated the WALs: every shard's log ends with an
  // uncommitted kShardMapChange marker.
  for (std::size_t s = 0; s < 3; ++s) {
    char name[32];
    std::snprintf(name, sizeof(name), "shard-%03zu.wal", s);
    const std::string p = (dir_ / name).string();
    const WalReadResult before = read_wal(p);
    ASSERT_TRUE(before.found);
    WalWriter w = WalWriter::resume(p, before.generation, before.map_epoch,
                                    before.num_shards, before.valid_bytes,
                                    before.records.size());
    w.append(WalRecord::make_map_change(1, 5));
  }
  // Recovery strips the fence residue and resumes under the OLD map.
  ReputationService svc(durable(3));
  ASSERT_TRUE(svc.recovered());
  EXPECT_EQ(svc.num_shards(), 3u);
  EXPECT_EQ(svc.metrics().shard_map_epoch, 0u);
  EXPECT_EQ(svc.metrics().ratings_applied, half);

  // The interrupted resize never happened; rerunning it now and finishing
  // the stream still matches the never-resized reference.
  const ResizeStats rs = svc.resize(5);
  EXPECT_EQ(rs.num_shards, 5u);
  for (std::size_t k = half; k < load.size(); ++k)
    ASSERT_TRUE(svc.ingest(load[k]));
  svc.force_epoch();
  svc.drain();
  EXPECT_EQ(capture(svc), static_run(3, load));
  svc.stop();
}

TEST_F(ReshardCrashTest, RecordsAfterAFenceMarkerAreCorruption) {
  {
    ReputationService svc(durable(2));
    ASSERT_TRUE(svc.ingest({1, 2, Score::kPositive, 0}));
    svc.drain();
    svc.crash_stop();
  }
  // A rating logged AFTER a fence marker cannot happen in any crash
  // ordering (workers park at the fence until the commit rotates the
  // file), so recovery must refuse the directory outright.
  const std::string p = (dir_ / "shard-000.wal").string();
  const WalReadResult before = read_wal(p);
  ASSERT_TRUE(before.found);
  {
    WalWriter w = WalWriter::resume(p, before.generation, before.map_epoch,
                                    before.num_shards, before.valid_bytes,
                                    before.records.size());
    w.append(WalRecord::make_map_change(1, 4));
    w.append(WalRecord::make_rating({3, 4, Score::kPositive, 1}));
  }
  EXPECT_THROW(ReputationService svc(durable(2)), std::runtime_error);
}

TEST_F(ReshardCrashTest, CommittedResizeRecoversAtTheNewWidth) {
  const auto load = reshard_workload(66);
  const std::size_t half = load.size() / 2;
  {
    ReputationService svc(durable(2));
    for (std::size_t k = 0; k < half; ++k) ASSERT_TRUE(svc.ingest(load[k]));
    svc.drain();
    svc.resize(4);
    // Crash right after the commit: the new map must already be durable.
    svc.crash_stop();
  }
  ReputationService svc(durable(2));
  ASSERT_TRUE(svc.recovered());
  EXPECT_EQ(svc.num_shards(), 4u);
  EXPECT_EQ(svc.metrics().shard_map_epoch, 1u);
  EXPECT_EQ(svc.metrics().ratings_applied, half);
  for (std::size_t k = half; k < load.size(); ++k)
    ASSERT_TRUE(svc.ingest(load[k]));
  svc.force_epoch();
  svc.drain();
  const RunResult actual = capture(svc);
  const RunResult expected = static_run(2, load);
  EXPECT_EQ(actual.reputations, expected.reputations);
  EXPECT_EQ(actual.suspected, expected.suspected);
  // Pre-resize epochs were restored from the commit's checkpoints, not
  // replayed, so the recovered log holds only the post-recovery epochs —
  // byte-identical to the tail of the uninterrupted run's log.
  EXPECT_FALSE(actual.report_log.empty());
  EXPECT_TRUE(expected.report_log.ends_with(actual.report_log));
  svc.stop();
}

}  // namespace
}  // namespace p2prep::service
