// Systematic corruption sweeps over the WAL v2 and checkpoint disk
// formats, all in memory via parse_wal/parse_checkpoint (DESIGN.md §14).
// Where the fuzz corpus pins individual hostile fixtures, these tests are
// exhaustive over a dimension: truncation at EVERY byte, a bit-flip at
// EVERY position of the v2 header and the resize-fence record, so the
// recovery guarantees ("keep the valid prefix", "never trust a torn or
// tampered tail") hold at every offset, not just the ones we thought of.
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rating/types.h"
#include "service/wal.h"

namespace p2prep::service {
namespace {

using rating::Rating;
using rating::Score;

/// A representative WAL image: ratings, an epoch marker, a resize fence
/// (uncommitted-resize residue), one more rating after it.
struct WalImage {
  std::string bytes;
  std::vector<WalRecord> records;
  std::vector<std::uint64_t> end_offsets;
  std::size_t fence_index = 0;  ///< Index of the kShardMapChange record.
};

WalImage build_wal_image() {
  WalImage img;
  append_wal_header(img.bytes, /*generation=*/2, /*map_epoch=*/1,
                    /*num_shards=*/4);
  img.records = {
      WalRecord::make_rating(Rating{1, 2, Score::kPositive, 10}),
      WalRecord::make_rating(Rating{2, 3, Score::kNegative, 11}),
      WalRecord::make_marker(1),
      WalRecord::make_rating(Rating{3, 1, Score::kNeutral, 12}),
      WalRecord::make_map_change(/*map_epoch=*/2, /*new_num_shards=*/8),
      WalRecord::make_rating(Rating{1, 3, Score::kPositive, 13}),
  };
  img.fence_index = 4;
  for (const WalRecord& rec : img.records) {
    append_wal_frame(img.bytes, rec);
    img.end_offsets.push_back(img.bytes.size());
  }
  return img;
}

bool same_record(const WalRecord& a, const WalRecord& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case WalRecordKind::kRating:
      return a.rating == b.rating;
    case WalRecordKind::kEpochMarker:
      return a.epoch_seq == b.epoch_seq;
    case WalRecordKind::kShardMapChange:
      return a.epoch_seq == b.epoch_seq && a.num_shards == b.num_shards;
  }
  return false;
}

TEST(WalCorruptionTest, IntactImageRoundTrips) {
  const WalImage img = build_wal_image();
  const WalReadResult r = parse_wal(img.bytes);
  ASSERT_TRUE(r.found);
  EXPECT_FALSE(r.truncated_tail);
  EXPECT_EQ(r.generation, 2u);
  EXPECT_EQ(r.map_epoch, 1u);
  EXPECT_EQ(r.num_shards, 4u);
  ASSERT_EQ(r.records.size(), img.records.size());
  for (std::size_t i = 0; i < img.records.size(); ++i)
    EXPECT_TRUE(same_record(r.records[i], img.records[i])) << "record " << i;
  EXPECT_EQ(r.end_offsets, img.end_offsets);
  EXPECT_EQ(r.valid_bytes, img.bytes.size());
}

// Truncation at every record boundary: the cut is clean, so the reader
// must keep exactly the records before it and not report a torn tail.
TEST(WalCorruptionTest, TruncationAtEveryRecordBoundary) {
  const WalImage img = build_wal_image();
  for (std::size_t i = 0; i < img.end_offsets.size(); ++i) {
    const std::string cut =
        img.bytes.substr(0, static_cast<std::size_t>(img.end_offsets[i]));
    const WalReadResult r = parse_wal(cut);
    ASSERT_TRUE(r.found) << "cut after record " << i;
    EXPECT_FALSE(r.truncated_tail) << "cut after record " << i;
    EXPECT_EQ(r.records.size(), i + 1) << "cut after record " << i;
    EXPECT_EQ(r.valid_bytes, cut.size()) << "cut after record " << i;
  }
}

// Truncation at EVERY byte: whatever the cut point — mid-header,
// mid-frame-header, mid-payload — the reader keeps the longest whole-
// record prefix, reports the tear, and never reads past the buffer
// (ASan-checked in the sanitizer CI legs).
TEST(WalCorruptionTest, TruncationAtEveryByte) {
  const WalImage img = build_wal_image();
  for (std::size_t len = 0; len < img.bytes.size(); ++len) {
    const std::string cut = img.bytes.substr(0, len);
    const WalReadResult r = parse_wal(cut);
    if (len < kWalHeaderBytes) {
      EXPECT_FALSE(r.found) << "cut at byte " << len;
      EXPECT_EQ(r.records.size(), 0u) << "cut at byte " << len;
      continue;
    }
    ASSERT_TRUE(r.found) << "cut at byte " << len;
    // The valid prefix is the greatest record boundary <= len.
    std::size_t expect_records = 0;
    std::uint64_t expect_valid = kWalHeaderBytes;
    for (std::size_t i = 0; i < img.end_offsets.size(); ++i) {
      if (img.end_offsets[i] <= len) {
        expect_records = i + 1;
        expect_valid = img.end_offsets[i];
      }
    }
    EXPECT_EQ(r.records.size(), expect_records) << "cut at byte " << len;
    EXPECT_EQ(r.valid_bytes, expect_valid) << "cut at byte " << len;
    EXPECT_EQ(r.truncated_tail, len != expect_valid) << "cut at byte " << len;
    for (std::size_t i = 0; i < expect_records; ++i)
      EXPECT_TRUE(same_record(r.records[i], img.records[i]))
          << "cut at byte " << len << ", record " << i;
  }
}

// A bit-flip at every position of the 28-byte v2 header. Flips inside the
// magic must make the file unrecognizable; flips in the
// generation/map_epoch/num_shards fields yield a well-formed header with
// a different stamp — the records must still parse intact (recovery
// cross-checks the stamp against checkpoints, not the reader).
TEST(WalCorruptionTest, BitFlipsOverHeader) {
  const WalImage img = build_wal_image();
  for (std::size_t byte = 0; byte < kWalHeaderBytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = img.bytes;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      const WalReadResult r = parse_wal(mutated);
      if (byte < 8) {
        EXPECT_FALSE(r.found) << "magic byte " << byte << " bit " << bit;
        EXPECT_TRUE(r.records.empty())
            << "magic byte " << byte << " bit " << bit;
      } else {
        ASSERT_TRUE(r.found) << "header byte " << byte << " bit " << bit;
        EXPECT_FALSE(r.truncated_tail)
            << "header byte " << byte << " bit " << bit;
        EXPECT_EQ(r.records.size(), img.records.size())
            << "header byte " << byte << " bit " << bit;
        // Exactly one stamp field differs, by exactly the flipped bit.
        EXPECT_NE(r.generation ^ r.map_epoch ^ r.num_shards,
                  2u ^ 1u ^ 4u)
            << "header byte " << byte << " bit " << bit;
      }
    }
  }
}

// A bit-flip at every position of the resize-fence record's frame (length,
// CRC, payload). Whatever the flip does — length mismatch, CRC mismatch,
// unknown kind — the reader must keep every record before the fence and
// cut the file there; a tampered fence must never decode as something
// else, and the flip must never damage the preceding records.
TEST(WalCorruptionTest, BitFlipsOverFenceRecord) {
  const WalImage img = build_wal_image();
  const std::size_t fence_begin = static_cast<std::size_t>(
      img.fence_index == 0 ? kWalHeaderBytes
                           : img.end_offsets[img.fence_index - 1]);
  const std::size_t fence_end =
      static_cast<std::size_t>(img.end_offsets[img.fence_index]);
  for (std::size_t byte = fence_begin; byte < fence_end; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = img.bytes;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      const WalReadResult r = parse_wal(mutated);
      ASSERT_TRUE(r.found) << "fence byte " << byte << " bit " << bit;
      EXPECT_TRUE(r.truncated_tail) << "fence byte " << byte << " bit " << bit;
      ASSERT_EQ(r.records.size(), img.fence_index)
          << "fence byte " << byte << " bit " << bit;
      EXPECT_EQ(r.valid_bytes, fence_begin)
          << "fence byte " << byte << " bit " << bit;
      for (std::size_t i = 0; i < img.fence_index; ++i)
        EXPECT_TRUE(same_record(r.records[i], img.records[i]))
            << "fence byte " << byte << " bit " << bit << ", record " << i;
    }
  }
}

// Version skew: the reader must not accept a file stamped with a past or
// future format version under the v2 parser (the magic encodes the
// version, so "cross-version" is "wrong magic byte 7").
TEST(WalCorruptionTest, RejectsOtherFormatVersions) {
  const WalImage img = build_wal_image();
  for (char version : {'1', '3'}) {
    std::string mutated = img.bytes;
    mutated[6] = version;  // "P2PWAL<version>\0"
    const WalReadResult r = parse_wal(mutated);
    EXPECT_FALSE(r.found) << "version " << version;
    EXPECT_TRUE(r.records.empty()) << "version " << version;
  }
}

// --- Checkpoints -----------------------------------------------------------

ShardCheckpoint build_checkpoint() {
  ShardCheckpoint ckpt;
  ckpt.wal_generation = 3;
  ckpt.wal_records_applied = 57;
  ckpt.map_epoch = 2;
  ckpt.map_num_shards = 8;
  ckpt.epochs_completed = 5;
  ckpt.applied_total = 1024;
  ckpt.applied_since_epoch = 32;
  ckpt.last_epoch_tick = 640;
  ckpt.engine_blob = "opaque-engine-state";
  ckpt.suppressed = {2, 7, 19};
  ckpt.detected = {7, 19};
  ckpt.cells.push_back({/*ratee=*/1, /*rater=*/2, {10, 8, 1}});
  ckpt.cells.push_back({/*ratee=*/2, /*rater=*/1, {4, 1, 3}});
  return ckpt;
}

TEST(CheckpointCorruptionTest, IntactImageRoundTrips) {
  const ShardCheckpoint ckpt = build_checkpoint();
  const std::string image = encode_checkpoint(ckpt);
  const std::optional<ShardCheckpoint> parsed = parse_checkpoint(image);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->wal_generation, ckpt.wal_generation);
  EXPECT_EQ(parsed->engine_blob, ckpt.engine_blob);
  EXPECT_EQ(parsed->suppressed, ckpt.suppressed);
  EXPECT_EQ(parsed->detected, ckpt.detected);
  ASSERT_EQ(parsed->cells.size(), ckpt.cells.size());
  EXPECT_EQ(encode_checkpoint(*parsed), image);
}

// Unlike the WAL (an append stream with a valid prefix), a checkpoint is
// all-or-nothing: truncation at ANY byte must reject the whole image —
// the length field pins the exact size, so recovery falls back to the WAL
// rather than trusting half a snapshot.
TEST(CheckpointCorruptionTest, TruncationAtEveryByteRejects) {
  const std::string image = encode_checkpoint(build_checkpoint());
  for (std::size_t len = 0; len < image.size(); ++len) {
    EXPECT_FALSE(parse_checkpoint(image.substr(0, len)).has_value())
        << "cut at byte " << len;
  }
}

// A bit-flip at every position of the whole image must reject it: magic
// and length flips break the envelope, everything else breaks the CRC.
// (Contrast with the WAL header, whose stamp fields are deliberately not
// CRC-protected — the checkpoint covers its entire payload.)
TEST(CheckpointCorruptionTest, BitFlipAnywhereRejects) {
  const std::string image = encode_checkpoint(build_checkpoint());
  for (std::size_t byte = 0; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = image;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      EXPECT_FALSE(parse_checkpoint(mutated).has_value())
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(CheckpointCorruptionTest, RejectsOtherFormatVersions) {
  std::string image = encode_checkpoint(build_checkpoint());
  image[7] = '1';  // "P2PCKPT<version>"
  EXPECT_FALSE(parse_checkpoint(image).has_value());
}

// Appending trailing garbage after a valid image must also reject: the
// envelope length must account for every byte of the file.
TEST(CheckpointCorruptionTest, TrailingGarbageRejects) {
  std::string image = encode_checkpoint(build_checkpoint());
  image.push_back('\0');
  EXPECT_FALSE(parse_checkpoint(image).has_value());
}

}  // namespace
}  // namespace p2prep::service
