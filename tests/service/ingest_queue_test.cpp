#include "service/ingest_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace p2prep::service {
namespace {

TEST(IngestQueueTest, FifoOrderPreserved) {
  IngestQueue<int> q(8, OverflowPolicy::kBlock);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 5; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(IngestQueueTest, BlockPolicyAppliesBackpressure) {
  IngestQueue<int> q(2, OverflowPolicy::kBlock);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));

  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(3));  // blocks until a slot frees up
    third_pushed.store(true);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(q.size(), 2u);

  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(q.dropped(), 0u);
}

TEST(IngestQueueTest, DropOldestEvictsFromTheFront) {
  IngestQueue<int> q(3, OverflowPolicy::kDropOldest);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_TRUE(q.push(4));  // evicts 1
  EXPECT_EQ(q.dropped(), 1u);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(*q.pop(), 2);
  EXPECT_EQ(*q.pop(), 3);
  EXPECT_EQ(*q.pop(), 4);
}

TEST(IngestQueueTest, DropOldestSkipsNonEvictableElements) {
  // Only even values are evictable — stand-in for "never drop an epoch
  // marker" in the service.
  IngestQueue<int> q(3, OverflowPolicy::kDropOldest,
                     [](const int& v) { return v % 2 == 0; });
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_TRUE(q.push(8));  // evicts 2, the first evictable element
  EXPECT_EQ(q.dropped(), 1u);
  EXPECT_EQ(*q.pop(), 1);
  EXPECT_EQ(*q.pop(), 3);
  EXPECT_EQ(*q.pop(), 8);
}

TEST(IngestQueueTest, DropOldestGrowsWhenNothingIsEvictable) {
  IngestQueue<int> q(2, OverflowPolicy::kDropOldest,
                     [](const int&) { return false; });
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));  // nothing evictable: grows past capacity
  EXPECT_EQ(q.dropped(), 0u);
  EXPECT_EQ(q.size(), 3u);
}

TEST(IngestQueueTest, PushForcedBypassesCapacity) {
  IngestQueue<int> q(1, OverflowPolicy::kBlock);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push_forced(2));  // would block as a normal push
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(*q.pop(), 1);
  EXPECT_EQ(*q.pop(), 2);
}

TEST(IngestQueueTest, CloseDrainsRemainingElements) {
  IngestQueue<int> q(4, OverflowPolicy::kBlock);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_FALSE(q.push_forced(4));
  EXPECT_EQ(*q.pop(), 1);
  EXPECT_EQ(*q.pop(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(IngestQueueTest, PurgeAndCloseDiscardsEverything) {
  IngestQueue<int> q(4, OverflowPolicy::kBlock);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.purge_and_close();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(IngestQueueTest, CloseUnblocksWaitingProducer) {
  IngestQueue<int> q(1, OverflowPolicy::kBlock);
  EXPECT_TRUE(q.push(1));
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    EXPECT_FALSE(q.push(2));  // blocked, then released by close()
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  q.close();
  producer.join();
  EXPECT_TRUE(returned.load());
}

TEST(IngestQueueTest, ManyProducersOneConsumer) {
  IngestQueue<int> q(64, OverflowPolicy::kBlock);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q] {
      for (int i = 0; i < kPerProducer; ++i) EXPECT_TRUE(q.push(i));
    });
  }
  int popped = 0;
  while (popped < kProducers * kPerProducer) {
    if (q.pop().has_value()) ++popped;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(popped, kProducers * kPerProducer);
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace p2prep::service
