// DetectorRegistry unit tests: built-in coverage, fail-fast unknown-name
// errors, duplicate/empty registration rejection, and concurrent
// construction (the service builds one detector per shard in parallel —
// the DetectRegistryConcurrency suite runs under TSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "detect/registry.h"
#include "detect/ring_detector.h"
#include "detect/snapshot.h"
#include "rating/matrix.h"

namespace p2prep {
namespace {

using detect::DetectorRegistry;

TEST(DetectRegistryTest, BuiltinsRegisteredAndSorted) {
  DetectorRegistry& reg = DetectorRegistry::global();
  EXPECT_TRUE(reg.contains("basic"));
  EXPECT_TRUE(reg.contains("optimized"));
  EXPECT_TRUE(reg.contains("group"));
  EXPECT_TRUE(reg.contains("ring"));
  EXPECT_FALSE(reg.contains("nope"));

  const std::vector<std::string> names = reg.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* builtin : {"basic", "group", "optimized", "ring"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), builtin), names.end())
        << builtin;
  }
}

TEST(DetectRegistryTest, CreateReturnsDetectorUnderItsName) {
  const core::DetectorConfig cfg;
  for (const char* name : {"basic", "optimized", "group", "ring"}) {
    const auto detector = DetectorRegistry::global().create(name, cfg);
    ASSERT_NE(detector, nullptr) << name;
    EXPECT_EQ(detector->name(), name);
  }
  // Only the streaming ring detector asks the host for dirty tracking.
  EXPECT_TRUE(DetectorRegistry::global()
                  .create("ring", cfg)
                  ->wants_dirty_tracking());
  EXPECT_FALSE(DetectorRegistry::global()
                   .create("optimized", cfg)
                   ->wants_dirty_tracking());
}

TEST(DetectRegistryTest, UnknownNameThrowsListingEveryRegisteredName) {
  const core::DetectorConfig cfg;
  try {
    (void)DetectorRegistry::global().create("does-not-exist", cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("does-not-exist"), std::string::npos) << what;
    EXPECT_NE(what.find("registered:"), std::string::npos) << what;
    for (const char* builtin : {"basic", "group", "optimized", "ring"}) {
      EXPECT_NE(what.find(builtin), std::string::npos) << what;
    }
  }
}

TEST(DetectRegistryTest, DuplicateAndEmptyRegistrationThrow) {
  DetectorRegistry& reg = DetectorRegistry::global();
  const auto factory = [](const core::DetectorConfig& cfg) {
    return std::make_unique<detect::RingDetector>(cfg);
  };
  // Unique to this test; the global registry lives for the process.
  const std::string name = "zz-registry-test-plugin";
  ASSERT_FALSE(reg.contains(name));
  reg.register_detector(name, factory);
  EXPECT_TRUE(reg.contains(name));
  EXPECT_EQ(reg.create(name, core::DetectorConfig{})->name(), "ring");
  EXPECT_THROW(reg.register_detector(name, factory), std::invalid_argument);
  EXPECT_THROW(reg.register_detector("ring", factory), std::invalid_argument);
  EXPECT_THROW(reg.register_detector("", factory), std::invalid_argument);
}

// Shards construct their detectors concurrently at service startup; the
// registry (a shared map behind a mutex) must survive parallel create()
// and names() traffic. Runs under TSan via tools/run_static_analysis.sh.
TEST(DetectRegistryConcurrency, ParallelCreateAndListAndDetect) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 40;

  rating::RatingMatrix matrix(8, rating::MatrixBackend::kSparse);
  for (int k = 0; k < 25; ++k) {
    matrix.add_rating(1, 0, rating::Score::kPositive);
    matrix.add_rating(0, 1, rating::Score::kPositive);
  }

  std::vector<std::thread> threads;
  std::vector<std::size_t> created(kThreads, 0);
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const core::DetectorConfig cfg;
      for (std::size_t i = 0; i < kIters; ++i) {
        const char* name = (t + i) % 2 == 0 ? "optimized" : "ring";
        auto detector = DetectorRegistry::global().create(name, cfg);
        core::DetectionReport report;
        detector->on_epoch(detect::EpochSnapshot::of(matrix), report);
        created[t] += DetectorRegistry::global().names().empty() ? 0 : 1;
      }
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 0; t < kThreads; ++t) EXPECT_EQ(created[t], kIters);
}

}  // namespace
}  // namespace p2prep
