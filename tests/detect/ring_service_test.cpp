// The ring detector behind the service front door: --detector=ring wired
// through ServiceConfig, ring members suppressed and visible to colluder
// queries like flagged pairs, ring gauges surfaced in ServiceMetrics (the
// same struct GetMetrics serializes — tests/rpc/protocol_test.cpp covers
// the wire round trip), and unknown detector names failing fast at
// construction with the registered list.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "rating/types.h"
#include "service/service.h"

namespace p2prep {
namespace {

using rating::NodeId;
using rating::Rating;
using rating::Score;
using service::ReputationService;
using service::ServiceConfig;
using service::ServiceMetrics;

ServiceConfig ring_config(std::size_t nodes, std::size_t shards) {
  ServiceConfig cfg;
  cfg.num_nodes = nodes;
  cfg.num_shards = shards;
  cfg.detector = "ring";
  cfg.epoch_ratings = 1u << 20;  // epochs fire via force_epoch() only
  return cfg;
}

/// Ingests the directed boost cycle m0 -> m1 -> ... -> m0 plus a few
/// outside negatives per member (the C2 context).
void ingest_ring(ReputationService& svc, const std::vector<NodeId>& members,
                 NodeId outside_rater) {
  rating::Tick tick = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const NodeId u = members[i];
    const NodeId v = members[(i + 1) % members.size()];
    for (int k = 0; k < 25; ++k)
      ASSERT_TRUE(svc.ingest({u, v, Score::kPositive, tick++}));
  }
  for (const NodeId member : members)
    for (int k = 0; k < 3; ++k)
      ASSERT_TRUE(svc.ingest({outside_rater, member, Score::kNegative,
                              tick++}));
}

TEST(DetectRingServiceTest, UnknownDetectorFailsFastListingNames) {
  ServiceConfig cfg = ring_config(10, 1);
  cfg.detector = "does-not-exist";
  try {
    ReputationService svc(cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("does-not-exist"), std::string::npos) << what;
    EXPECT_NE(what.find("registered:"), std::string::npos) << what;
    EXPECT_NE(what.find("ring"), std::string::npos) << what;
  }
}

TEST(DetectRingServiceTest, PerShardRingDetectionSuppressesAndReports) {
  ServiceConfig cfg = ring_config(20, 1);
  cfg.epoch_scope = service::EpochScope::kPerShard;
  ReputationService svc(cfg);

  const std::vector<NodeId> ring = {0, 1, 2};
  ingest_ring(svc, ring, 10);
  svc.force_epoch();
  svc.drain();

  const ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.rings_found, 1u);
  EXPECT_EQ(m.ring_largest, 3u);
  EXPECT_EQ(m.detections_total, 1u);

  const std::string log = svc.report_log();
  EXPECT_NE(log.find("rings=1"), std::string::npos) << log;
  EXPECT_NE(log.find("ring(0, 1, 2)"), std::string::npos) << log;

  const service::ServiceSnapshot snap = svc.snapshot();
  for (const NodeId member : ring) {
    EXPECT_TRUE(snap.suspected(member)) << member;
    EXPECT_EQ(snap.reputation(member), 0.0) << member;  // kReset
  }
  EXPECT_FALSE(snap.suspected(10));

  // The gauge line rides through ServiceMetrics::to_string (what the CLI
  // metrics command prints).
  EXPECT_NE(m.to_string().find("rings: found=1 largest=3"),
            std::string::npos);
  svc.stop();
}

TEST(DetectRingServiceTest, GlobalScopeRunsRingPluginAcrossShards) {
  ServiceConfig cfg = ring_config(40, 3);
  ASSERT_EQ(cfg.epoch_scope, service::EpochScope::kGlobal);
  ReputationService svc(cfg);

  const std::vector<NodeId> ring = {4, 9, 17, 23};
  ingest_ring(svc, ring, 31);
  svc.force_epoch();
  svc.drain();

  ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.rings_found, 1u);
  EXPECT_EQ(m.ring_largest, 4u);

  const std::string log = svc.report_log();
  EXPECT_NE(log.find("global"), std::string::npos) << log;
  EXPECT_NE(log.find("ring(4, 9, 17, 23)"), std::string::npos) << log;

  const service::ServiceSnapshot snap = svc.snapshot();
  for (const NodeId member : ring)
    EXPECT_TRUE(snap.suspected(member)) << member;

  // A second epoch over untouched state: the streaming cache must keep
  // reporting the same ring (the service feeds the detector dirty deltas).
  svc.force_epoch();
  svc.drain();
  m = svc.metrics();
  EXPECT_EQ(m.rings_found, 2u);
  EXPECT_EQ(m.ring_largest, 4u);
  svc.stop();
}

}  // namespace
}  // namespace p2prep
