// RingDetector correctness: planted 3/4/5-rings recovered with precision
// and recall 1.0 at paper-default thresholds, pair-only collusion traces
// produce zero ring flags, the joint-complement gate keeps organically
// popular cycles out, and the incremental (dirty-delta) path is
// byte-identical to a from-scratch rebuild epoch after epoch.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "detect/ring_detector.h"
#include "detect/snapshot.h"
#include "rating/matrix.h"
#include "service/shard.h"
#include "util/rng.h"

namespace p2prep {
namespace {

using detect::EpochSnapshot;
using detect::RingDetector;
using rating::MatrixBackend;
using rating::NodeId;
using rating::RatingMatrix;
using rating::Score;

void add_many(RatingMatrix& m, NodeId ratee, NodeId rater, int n, Score s) {
  for (int k = 0; k < n; ++k) m.add_rating(ratee, rater, s);
}

/// Plants the directed boost cycle m0 -> m1 -> ... -> m0: each member
/// rates its successor `boosts` times positively (cell a_(succ, member)).
void plant_ring(RatingMatrix& m, const std::vector<NodeId>& members,
                int boosts = 25) {
  for (std::size_t i = 0; i < members.size(); ++i) {
    const NodeId u = members[i];
    const NodeId v = members[(i + 1) % members.size()];
    add_many(m, v, u, boosts, Score::kPositive);
  }
}

/// C2 context: each member collects a few negatives from outside raters,
/// too infrequent (< T_N) to create boost edges of their own.
void add_outside_negatives(RatingMatrix& m,
                           const std::vector<NodeId>& members,
                           NodeId outside_rater) {
  for (const NodeId member : members)
    add_many(m, member, outside_rater, 3, Score::kNegative);
}

core::DetectionReport run(RingDetector& detector, const RatingMatrix& m) {
  core::DetectionReport report;
  detector.on_epoch(EpochSnapshot::of(m), report);
  return report;
}

core::DetectionReport run_ref(const core::DetectorConfig& cfg,
                              const RatingMatrix& m) {
  RingDetector detector(cfg);
  return run(detector, m);
}

TEST(DetectRingTest, PlantedRingsRecoveredWithPerfectPrecisionAndRecall) {
  RatingMatrix m(40, MatrixBackend::kSparse);
  const std::vector<NodeId> ring3 = {0, 1, 2};
  const std::vector<NodeId> ring4 = {10, 11, 12, 13};
  const std::vector<NodeId> ring5 = {20, 21, 22, 23, 24};
  plant_ring(m, ring3);
  plant_ring(m, ring4, 30);
  plant_ring(m, ring5, 22);
  add_outside_negatives(m, ring3, 35);
  add_outside_negatives(m, ring4, 36);
  add_outside_negatives(m, ring5, 37);
  // Honest background: node 28 is popular but no single fan is frequent.
  for (NodeId fan = 29; fan < 34; ++fan)
    add_many(m, 28, fan, 10, Score::kPositive);
  // A mutual boosting pair is a 2-SCC — the pairwise detectors' domain,
  // never a ring.
  add_many(m, 30, 31, 25, Score::kPositive);
  add_many(m, 31, 30, 25, Score::kPositive);

  core::DetectorConfig cfg;  // paper defaults: T_a=0.8 T_b=0.2 T_N=20
  RingDetector detector(cfg);
  const core::DetectionReport report = run(detector, m);

  ASSERT_EQ(report.rings.size(), 3u);  // precision 1.0: nothing else
  EXPECT_EQ(report.rings[0].members, ring3);  // recall 1.0: all planted
  EXPECT_EQ(report.rings[1].members, ring4);
  EXPECT_EQ(report.rings[2].members, ring5);

  // Evidence fields describe the planted cycles exactly.
  EXPECT_EQ(report.rings[0].min_internal_frequency, 25u);
  EXPECT_EQ(report.rings[0].internal_ratings, 75u);
  EXPECT_EQ(report.rings[0].internal_positive_fraction, 1.0);
  EXPECT_EQ(report.rings[0].outside_ratings, 9u);
  EXPECT_EQ(report.rings[0].outside_positive_fraction, 0.0);
  EXPECT_TRUE(report.rings[0].contains(1));
  EXPECT_FALSE(report.rings[0].contains(10));

  // Ring members flow into the colluder set like pair members.
  const auto colluders = report.colluders();
  const auto flagged = [&colluders](NodeId id) {
    return std::find(colluders.begin(), colluders.end(), id) !=
           colluders.end();
  };
  for (const NodeId id : {0u, 1u, 2u, 10u, 13u, 20u, 24u})
    EXPECT_TRUE(flagged(id)) << id;
  EXPECT_FALSE(flagged(28));

  EXPECT_EQ(detector.stats().rings_found, 3u);
  EXPECT_EQ(detector.stats().largest_ring, 5u);
  EXPECT_FALSE(detector.last_pass_incremental());
}

TEST(DetectRingTest, RingSizeMinAndFrequencyPeelAreConfigurable) {
  RatingMatrix m(10, MatrixBackend::kSparse);
  plant_ring(m, {0, 1, 2}, 25);       // tight ring
  plant_ring(m, {5, 6, 7, 8}, 21);    // weaker ring
  core::DetectorConfig cfg;
  // Raising the peel threshold above 21 drops the weak ring's edges.
  cfg.ring_internal_frequency_min = 24;
  const core::DetectionReport peeled = run_ref(cfg, m);
  ASSERT_EQ(peeled.rings.size(), 1u);
  EXPECT_EQ(peeled.rings[0].members, (std::vector<NodeId>{0, 1, 2}));
  // Raising ring_size_min excludes the 3-ring too.
  cfg.ring_internal_frequency_min = 0;
  cfg.ring_size_min = 4;
  const core::DetectionReport sized = run_ref(cfg, m);
  ASSERT_EQ(sized.rings.size(), 1u);
  EXPECT_EQ(sized.rings[0].members, (std::vector<NodeId>{5, 6, 7, 8}));
}

TEST(DetectRingTest, JointComplementGateRejectsOrganicallyPopularCycles) {
  RatingMatrix m(20, MatrixBackend::kSparse);
  const std::vector<NodeId> cycle = {0, 1, 2};
  plant_ring(m, cycle);
  // Genuinely popular members: plenty of positive outside opinion (each
  // fan stays under T_N, so no extra boost edges).
  for (const NodeId member : cycle)
    for (NodeId fan = 10; fan < 16; ++fan)
      add_many(m, member, fan, 10, Score::kPositive);

  core::DetectorConfig cfg;
  RingDetector gated(cfg);
  EXPECT_TRUE(run(gated, m).rings.empty());

  cfg.ring_outside_check = false;
  RingDetector ungated(cfg);
  const core::DetectionReport report = run(ungated, m);
  ASSERT_EQ(report.rings.size(), 1u);
  EXPECT_EQ(report.rings[0].members, cycle);
  EXPECT_EQ(report.rings[0].outside_ratings, 180u);
  EXPECT_EQ(report.rings[0].outside_positive_fraction, 1.0);
}

// Pairwise collusion (the paper's Fig. 3 signature) must never surface as
// rings: mutual pairs are 2-SCCs, below ring_size_min by construction.
// The organic background stays under T_N per cell so the boost graph
// contains exactly the planted pair edges.
TEST(DetectRingTest, PairOnlyTracesProduceZeroRingFlags) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    util::Rng rng(seed);
    const std::size_t n = 24 + rng.next_below(25);
    const std::size_t pairs = 1 + rng.next_below(3);
    RatingMatrix matrix(n, MatrixBackend::kSparse);
    for (std::size_t p = 0; p < pairs; ++p) {
      const auto a = static_cast<NodeId>(2 * p);
      const auto b = static_cast<NodeId>(2 * p + 1);
      const int boosts = 25 + static_cast<int>(rng.next_below(31));
      add_many(matrix, b, a, boosts, Score::kPositive);
      add_many(matrix, a, b, boosts, Score::kPositive);
    }
    const core::DetectorConfig cfg;  // paper defaults (T_N = 20)
    const std::size_t organic = 400 + rng.next_below(400);
    for (std::size_t e = 0; e < organic; ++e) {
      const auto rater = static_cast<NodeId>(rng.next_below(n));
      auto ratee = static_cast<NodeId>(rng.next_below(n));
      if (ratee == rater) ratee = static_cast<NodeId>((ratee + 1) % n);
      const rating::PairStats* cell = matrix.cell_or_null(ratee, rater);
      if (cell != nullptr && cell->total + 1 >= cfg.frequency_min)
        continue;  // keep every organic cell sub-threshold
      matrix.add_rating(ratee, rater,
                        rng.chance(0.8) ? Score::kPositive
                                        : Score::kNegative);
    }

    RingDetector detector(cfg);
    const core::DetectionReport report = run(detector, matrix);
    EXPECT_TRUE(report.rings.empty()) << "seed " << seed;
    EXPECT_TRUE(report.pairs.empty()) << "seed " << seed;
    // The boost graph holds exactly the planted 2-cycles.
    EXPECT_EQ(detector.edge_count(), 2 * pairs) << "seed " << seed;
  }
}

// The streaming invariant: an epoch applied from the dirty delta must be
// byte-identical (report text, edge cache size) to a from-scratch rebuild
// over the same matrix — through edge creation, ring completion and edge
// destruction.
TEST(DetectRingTest, IncrementalEpochsMatchFullRebuildByteForByte) {
  RatingMatrix live(40, MatrixBackend::kSparse);
  live.set_dirty_tracking(true);
  ASSERT_TRUE(live.dirty_tracking());

  core::DetectorConfig cfg;
  RingDetector streaming(cfg);

  std::uint64_t epoch = 0;
  const auto run_both = [&](bool expect_incremental) {
    ++epoch;
    EpochSnapshot snap = EpochSnapshot::of(live);
    snap.dirty.push_back(live.take_dirty_cells());
    core::DetectionReport inc_report;
    streaming.on_epoch(snap, inc_report);
    EXPECT_EQ(streaming.last_pass_incremental(), expect_incremental)
        << "epoch " << epoch;
    RingDetector fresh(cfg);  // unprimed: always rebuilds from the matrix
    core::DetectionReport full_report;
    fresh.on_epoch(snap, full_report);
    EXPECT_FALSE(fresh.last_pass_incremental());
    EXPECT_EQ(streaming.edge_count(), fresh.edge_count())
        << "epoch " << epoch;
    EXPECT_EQ(service::format_epoch_report("ring", epoch, inc_report),
              service::format_epoch_report("ring", epoch, full_report))
        << "epoch " << epoch;
    return inc_report;
  };

  // Epoch 1: open path 0 -> 1 -> 2 (no cycle yet). The first delta after
  // set_dirty_tracking is incomplete, so this pass is a full rebuild.
  add_many(live, 1, 0, 25, Score::kPositive);
  add_many(live, 2, 1, 25, Score::kPositive);
  add_outside_negatives(live, {0, 1, 2}, 30);
  EXPECT_TRUE(run_both(false).rings.empty());

  // Epoch 2: the closing edge 2 -> 0 arrives — ring, applied from the
  // delta alone.
  add_many(live, 0, 2, 25, Score::kPositive);
  const core::DetectionReport closed = run_both(true);
  ASSERT_EQ(closed.rings.size(), 1u);
  EXPECT_EQ(closed.rings[0].members, (std::vector<NodeId>{0, 1, 2}));

  // Epoch 3: only unrelated traffic dirtied — the ring must persist.
  add_many(live, 20, 21, 5, Score::kPositive);
  EXPECT_EQ(run_both(true).rings.size(), 1u);

  // Epoch 4: negatives poison edge 1 -> 2 below T_a; the incremental
  // pass must erase it and dissolve the ring.
  add_many(live, 2, 1, 150, Score::kNegative);
  EXPECT_TRUE(run_both(true).rings.empty());

  // Window reset invalidates the delta; the next pass must rebuild.
  live.clear_window();
  add_many(live, 1, 0, 25, Score::kPositive);
  EXPECT_TRUE(run_both(false).rings.empty());
}

}  // namespace
}  // namespace p2prep
