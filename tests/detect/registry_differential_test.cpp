// Differential proof that the registry refactor changed nothing: for 100
// randomized collusion traces, a registry-constructed detector must emit a
// report byte-identical (format_epoch_report) to the core detector it
// wraps, instantiated directly — same pairs, same evidence text, same
// colluder sets; the group adapter's rings must carry exactly the core
// group detector's member sets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/basic_detector.h"
#include "core/group_detector.h"
#include "core/optimized_detector.h"
#include "detect/registry.h"
#include "detect/snapshot.h"
#include "rating/matrix.h"
#include "rating/store.h"
#include "service/shard.h"
#include "tests/differential/trace_gen.h"

namespace p2prep {
namespace {

using rating::NodeId;
using rating::Rating;
using rating::RatingMatrix;
using rating::RatingStore;

class RegistryDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    const std::uint64_t seed = GetParam();
    trace_ = testgen::make_trace(seed);
    cfg_ = testgen::config_for(seed);
    RatingStore store(trace_.n);
    for (const Rating& r : trace_.ratings) ASSERT_TRUE(store.ingest(r));
    const std::vector<double> reps = testgen::reputations_of(store);
    matrix_ = RatingMatrix::build(store, reps, cfg_.high_rep_threshold,
                                  cfg_.frequency_min);
  }

  [[nodiscard]] core::DetectionReport via_registry(const char* name) const {
    const auto detector =
        detect::DetectorRegistry::global().create(name, cfg_);
    core::DetectionReport report;
    detector->on_epoch(detect::EpochSnapshot::of(matrix_), report);
    return report;
  }

  testgen::Trace trace_;
  core::DetectorConfig cfg_;
  RatingMatrix matrix_{0};
};

TEST_P(RegistryDifferentialTest, BasicAdapterMatchesDirectInstantiation) {
  const core::DetectionReport direct =
      core::BasicCollusionDetector(cfg_).detect(matrix_);
  const core::DetectionReport adapted = via_registry("basic");
  EXPECT_EQ(service::format_epoch_report("diff", 1, direct),
            service::format_epoch_report("diff", 1, adapted));
  EXPECT_EQ(direct.colluders(), adapted.colluders());
  EXPECT_EQ(direct.cost.total(), adapted.cost.total());
}

TEST_P(RegistryDifferentialTest, OptimizedAdapterMatchesDirectInstantiation) {
  const core::DetectionReport direct =
      core::OptimizedCollusionDetector(cfg_).detect(matrix_);
  const core::DetectionReport adapted = via_registry("optimized");
  EXPECT_EQ(service::format_epoch_report("diff", 1, direct),
            service::format_epoch_report("diff", 1, adapted));
  EXPECT_EQ(direct.colluders(), adapted.colluders());
  EXPECT_EQ(direct.cost.total(), adapted.cost.total());
}

TEST_P(RegistryDifferentialTest, GroupAdapterCarriesGroupMembersAsRings) {
  const core::GroupDetectionReport direct =
      core::GroupCollusionDetector(cfg_).detect(matrix_);
  const core::DetectionReport adapted = via_registry("group");
  ASSERT_EQ(adapted.rings.size(), direct.groups.size());
  // canonicalize() sorts rings by member list; mirror it on the groups.
  std::vector<std::vector<NodeId>> expected;
  expected.reserve(direct.groups.size());
  for (const auto& g : direct.groups) {
    std::vector<NodeId> members = g.members;
    std::sort(members.begin(), members.end());
    expected.push_back(std::move(members));
  }
  std::sort(expected.begin(), expected.end());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_EQ(adapted.rings[k].members, expected[k]) << "ring " << k;
  }
  EXPECT_EQ(adapted.colluders(), direct.colluders());
  EXPECT_TRUE(adapted.pairs.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegistryDifferentialTest,
                         ::testing::Range<std::uint64_t>(0, 100));

}  // namespace
}  // namespace p2prep
