// Figure 10: reputation distribution in EigenTrust employing the Optimized
// detection method, B = 0.2 (pretrusted ids 1-3, colluders 4-11).
//
// Expected shape vs Figure 6: colluders are zeroed, normal nodes gain more
// reputation than under EigenTrust alone, and pretrusted nodes stay high.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace p2prep;

  net::ExperimentSpec spec;
  spec.config = bench::paper_sim_config(/*colluder_good_prob=*/0.2);
  spec.roles = net::paper_roles(8, 3);
  spec.engine = net::EngineKind::kWeighted;
  spec.detector_config = bench::sim_detector_config();
  spec.runs = 5;

  spec.detector = net::DetectorKind::kNone;
  const net::ExperimentResult baseline = net::run_experiment(spec);
  spec.detector = net::DetectorKind::kOptimized;
  const net::ExperimentResult result = net::run_experiment(spec);

  bench::print_reputation_figure(
      "Figure 10: EigenTrust+Optimized, B=0.2", result, spec.roles);
  bench::print_detection_summary(result);

  double colluder_sum = 0.0;
  for (rating::NodeId id : spec.roles.colluders)
    colluder_sum += result.avg_reputation[id];
  double normal_share_with = 0.0;
  double normal_share_without = 0.0;
  for (rating::NodeId id = 11; id < spec.config.num_nodes; ++id) {
    normal_share_with += result.avg_reputation[id];
    normal_share_without += baseline.avg_reputation[id];
  }
  std::printf("shape check: colluder reputation sum %.6f (expect 0); "
              "normal nodes' reputation share %.4f with detection vs %.4f "
              "without\n",
              colluder_sum, normal_share_with, normal_share_without);
  return 0;
}
