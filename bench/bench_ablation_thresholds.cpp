// Ablation: threshold sensitivity (the paper's stated future work — "how
// to determine the threshold values ... effectively and efficiently").
// Sweeps T_a, T_b and T_N on the paper's simulation workload and reports
// detection recall, false positives and cost.
//
// Expected pattern: lowering T_a / raising T_b reduces false negatives;
// the opposite reduces false positives (paper Sec. IV-B). On this
// workload the mutual-frequency structure does most of the work, so a
// wide threshold plateau achieves recall 1.0 with no false positives.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace p2prep;

  net::ExperimentSpec base;
  base.config = bench::paper_sim_config(/*colluder_good_prob=*/0.2);
  base.config.sim_cycles = 10;  // keep the sweep fast; detection saturates early
  base.roles = net::paper_roles(8, 3);
  base.engine = net::EngineKind::kWeighted;
  base.detector = net::DetectorKind::kOptimized;
  base.runs = 3;

  std::printf("=== Ablation: detector threshold sensitivity ===\n");

  {
    util::Table table({"T_a", "recall", "false_pos", "detector_cost"});
    for (double ta : {0.5, 0.7, 0.8, 0.9, 0.95, 0.99}) {
      net::ExperimentSpec spec = base;
      spec.detector_config = bench::sim_detector_config();
      spec.detector_config.positive_fraction_min = ta;
      const auto r = net::run_experiment(spec);
      table.add_row({util::Table::num(ta, 2), util::Table::num(r.avg_recall, 3),
                     util::Table::num(r.avg_false_positives, 2),
                     util::Table::num(r.avg_detector_cost, 0)});
    }
    std::printf("T_a sweep (T_b=0.7, T_N=20):\n%s\n", table.render().c_str());
  }

  {
    util::Table table({"T_b", "recall", "false_pos", "detector_cost"});
    for (double tb : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      net::ExperimentSpec spec = base;
      spec.detector_config = bench::sim_detector_config();
      spec.detector_config.complement_fraction_max = tb;
      const auto r = net::run_experiment(spec);
      table.add_row({util::Table::num(tb, 2), util::Table::num(r.avg_recall, 3),
                     util::Table::num(r.avg_false_positives, 2),
                     util::Table::num(r.avg_detector_cost, 0)});
    }
    std::printf("T_b sweep (T_a=0.9, T_N=20):\n%s\n", table.render().c_str());
  }

  {
    util::Table table({"T_N", "recall", "false_pos", "detector_cost"});
    for (std::uint32_t tn : {5u, 10u, 20u, 50u, 100u, 150u, 250u}) {
      net::ExperimentSpec spec = base;
      spec.detector_config = bench::sim_detector_config();
      spec.detector_config.frequency_min = tn;
      const auto r = net::run_experiment(spec);
      table.add_row({util::Table::num(std::uint64_t{tn}),
                     util::Table::num(r.avg_recall, 3),
                     util::Table::num(r.avg_false_positives, 2),
                     util::Table::num(r.avg_detector_cost, 0)});
    }
    std::printf("T_N sweep (T_a=0.9, T_b=0.7; colluders rate 200x/window — "
                "T_N above that must kill recall):\n%s\n",
                table.render().c_str());
  }

  {
    // Accomplice propagation on/off, on the compromised-pretrusted cast.
    util::Table table({"flag_accomplices", "recall", "false_pos"});
    for (bool flag : {true, false}) {
      net::ExperimentSpec spec = base;
      spec.roles = net::compromised_roles();
      spec.detector_config = bench::sim_detector_config();
      spec.detector_config.flag_accomplices = flag;
      const auto r = net::run_experiment(spec);
      table.add_row({flag ? "on" : "off", util::Table::num(r.avg_recall, 3),
                     util::Table::num(r.avg_false_positives, 2)});
    }
    std::printf("accomplice propagation (compromised pretrusted cast — "
                "off misses the compromised pretrusted nodes):\n%s\n",
                table.render().c_str());
  }
  return 0;
}
