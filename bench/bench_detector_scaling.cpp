// Propositions 4.1 / 4.2: detector complexity scaling. Google-benchmark
// timings plus the detectors' own work-unit counters over growing n with
// all rows high-reputed (the worst case the propositions bound):
// Basic = O(m n^2), Optimized = O(m n).
//
// The BM_ParallelEpochService family adds the service-level dimension:
// full global-epoch wall time (freeze, multithreaded sweep, accomplice
// exchange, suppression) across shards x scan threads on a 10k-node / 1%
// density trace. `--smoke` runs only that family at reduced size — the
// ctest entry BenchDetectorScaling.Smoke keeps the wiring from rotting.
#include <benchmark/benchmark.h>

#include <string_view>
#include <vector>

#include "core/basic_detector.h"
#include "core/optimized_detector.h"
#include "detect/registry.h"
#include "detect/ring_detector.h"
#include "detect/snapshot.h"
#include "rating/matrix.h"
#include "rating/store.h"
#include "service/service.h"
#include "util/rng.h"

namespace {

using namespace p2prep;

bool g_smoke = false;

core::DetectorConfig config() {
  core::DetectorConfig c;
  c.positive_fraction_min = 0.8;
  c.complement_fraction_max = 0.2;
  c.frequency_min = 20;
  c.high_rep_threshold = 0.05;
  return c;
}

rating::RatingMatrix make_world(std::size_t n, rating::MatrixBackend backend) {
  util::Rng rng(n);
  rating::RatingStore store(n);
  // 5% of nodes are colluders in consecutive pairs.
  const std::size_t pairs = std::max<std::size_t>(1, n / 40);
  for (std::size_t p = 0; p < pairs; ++p) {
    const auto a = static_cast<rating::NodeId>(2 * p);
    const auto b = static_cast<rating::NodeId>(2 * p + 1);
    for (int k = 0; k < 40; ++k) {
      store.ingest({a, b, rating::Score::kPositive, 0});
      store.ingest({b, a, rating::Score::kPositive, 0});
    }
  }
  // Organic background load.
  for (rating::NodeId rater = 0; rater < n; ++rater) {
    for (int k = 0; k < 6; ++k) {
      auto ratee = static_cast<rating::NodeId>(rng.next_below(n));
      if (ratee == rater) ratee = static_cast<rating::NodeId>((ratee + 1) % n);
      store.ingest({rater, ratee,
                    rng.chance(ratee < 2 * pairs ? 0.1 : 0.85)
                        ? rating::Score::kPositive
                        : rating::Score::kNegative,
                    0});
    }
  }
  std::vector<double> reps(n, 0.2);  // everyone high-reputed: m = n
  return rating::RatingMatrix::build(store, reps, 0.05, 0, backend);
}

// Arg 0: n. Arg 1: matrix backend (0 = dense oracle, 1 = sparse rows).
// The dense work counters are the paper's Figure 13 quantities; the sparse
// rows trade the fixed n-wide Basic row scan for an O(row nnz) one at
// identical verdicts, and matrix_bytes shows the footprint gap.
rating::MatrixBackend backend_of(const benchmark::State& state) {
  return state.range(1) == 0 ? rating::MatrixBackend::kDense
                             : rating::MatrixBackend::kSparse;
}

void BM_BasicDetect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto matrix = make_world(n, backend_of(state));
  core::BasicCollusionDetector detector(config());
  std::uint64_t work = 0;
  for (auto _ : state) {
    const auto report = detector.detect(matrix);
    work = report.cost.total();
    benchmark::DoNotOptimize(report);
  }
  state.counters["work_units"] =
      benchmark::Counter(static_cast<double>(work));
  state.counters["work_per_n2"] = benchmark::Counter(
      static_cast<double>(work) / (static_cast<double>(n) * static_cast<double>(n)));
  state.counters["matrix_bytes"] =
      benchmark::Counter(static_cast<double>(matrix.approx_memory_bytes()));
}
BENCHMARK(BM_BasicDetect)
    ->ArgsProduct({{50, 100, 200, 400}, {0, 1}});

/// Ring world: directed boost cycles of size 3-5 (one per 40 nodes)
/// buried in the same organic background as make_world.
rating::RatingMatrix make_ring_world(std::size_t n,
                                     rating::MatrixBackend backend) {
  util::Rng rng(n * 7 + 1);
  rating::RatingStore store(n);
  const std::size_t rings = std::max<std::size_t>(1, n / 40);
  rating::NodeId next = 0;
  std::size_t members_total = 0;
  for (std::size_t r = 0; r < rings; ++r) {
    const std::size_t size = 3 + r % 3;
    for (std::size_t i = 0; i < size; ++i) {
      const auto u = static_cast<rating::NodeId>(next + i);
      const auto v = static_cast<rating::NodeId>(next + (i + 1) % size);
      for (int k = 0; k < 30; ++k)
        store.ingest({u, v, rating::Score::kPositive, 0});
    }
    next = static_cast<rating::NodeId>(next + size);
    members_total += size;
  }
  for (rating::NodeId rater = 0; rater < n; ++rater) {
    for (int k = 0; k < 6; ++k) {
      auto ratee = static_cast<rating::NodeId>(rng.next_below(n));
      if (ratee == rater) ratee = static_cast<rating::NodeId>((ratee + 1) % n);
      store.ingest({rater, ratee,
                    rng.chance(ratee < members_total ? 0.1 : 0.85)
                        ? rating::Score::kPositive
                        : rating::Score::kNegative,
                    0});
    }
  }
  std::vector<double> reps(n, 0.2);
  return rating::RatingMatrix::build(store, reps, 0.05, 0, backend);
}

void BM_OptimizedDetect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto matrix = make_world(n, backend_of(state));
  core::OptimizedCollusionDetector detector(config());
  std::uint64_t work = 0;
  for (auto _ : state) {
    const auto report = detector.detect(matrix);
    work = report.cost.total();
    benchmark::DoNotOptimize(report);
  }
  state.counters["work_units"] =
      benchmark::Counter(static_cast<double>(work));
  state.counters["work_per_n"] = benchmark::Counter(
      static_cast<double>(work) / static_cast<double>(n));
  state.counters["matrix_bytes"] =
      benchmark::Counter(static_cast<double>(matrix.approx_memory_bytes()));
}
BENCHMARK(BM_OptimizedDetect)
    ->ArgsProduct({{50, 100, 200, 400}, {0, 1}});

// The third detector dimension: registry-constructed streaming ring
// detection, full rebuild every epoch (no dirty delta in the snapshot).
// Work scales with nnz + boost-graph size, not n^2.
void BM_RingDetect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto matrix = make_ring_world(n, backend_of(state));
  const auto detector =
      detect::DetectorRegistry::global().create("ring", config());
  std::uint64_t work = 0;
  std::size_t rings = 0;
  for (auto _ : state) {
    core::DetectionReport report;
    detector->on_epoch(detect::EpochSnapshot::of(matrix), report);
    work = report.cost.total();
    rings = report.rings.size();
    benchmark::DoNotOptimize(report);
  }
  state.counters["work_units"] =
      benchmark::Counter(static_cast<double>(work));
  state.counters["rings"] = benchmark::Counter(static_cast<double>(rings));
  state.counters["matrix_bytes"] =
      benchmark::Counter(static_cast<double>(matrix.approx_memory_bytes()));
}
BENCHMARK(BM_RingDetect)
    ->ArgsProduct({{50, 100, 200, 400}, {0, 1}});

// Streaming pay-off: 10k nodes at 1% density, ~0.5% of cells dirtied per
// epoch. Arg 0 selects the epoch mode — 0 rebuilds the boost-edge cache
// from all ~1M nonzero cells, 1 applies only the dirty delta. The
// incremental line must come in >= 5x faster (it lands orders of
// magnitude faster: work_units counts ~5k touched cells vs ~1M scanned).
void BM_RingEpoch10k(benchmark::State& state) {
  const bool incremental = state.range(0) == 1;
  constexpr std::size_t kNodes = 10000;
  constexpr std::size_t kCells = kNodes * kNodes / 100;  // 1% density
  constexpr std::size_t kDirtyPerEpoch = kCells / 200;   // 0.5% per epoch

  rating::RatingMatrix matrix(kNodes, rating::MatrixBackend::kSparse);
  util::Rng rng(11);
  // Planted rings of size 3-5 so every epoch finds real cycles.
  rating::NodeId next = 0;
  for (std::size_t r = 0; r < 50; ++r) {
    const std::size_t size = 3 + r % 3;
    for (std::size_t i = 0; i < size; ++i) {
      const auto u = static_cast<rating::NodeId>(next + i);
      const auto v = static_cast<rating::NodeId>(next + (i + 1) % size);
      for (int k = 0; k < 25; ++k)
        matrix.add_rating(v, u, rating::Score::kPositive);
    }
    next = static_cast<rating::NodeId>(next + size);
  }
  const rating::NodeId members = next;  // C2: members get panned outside
  for (std::size_t c = 0; c < kCells; ++c) {
    const auto ratee = static_cast<rating::NodeId>(rng.next_below(kNodes));
    auto rater = static_cast<rating::NodeId>(rng.next_below(kNodes));
    if (rater == ratee) rater = static_cast<rating::NodeId>((rater + 1) % kNodes);
    matrix.add_rating(ratee, rater,
                      rng.chance(ratee < members ? 0.1 : 0.8)
                          ? rating::Score::kPositive
                          : rating::Score::kNegative);
  }

  detect::RingDetector detector(config());
  if (incremental) {
    matrix.set_dirty_tracking(true);
    // Prime the cache: the first delta after enabling is incomplete, so
    // this pass is a full rebuild.
    detect::EpochSnapshot prime = detect::EpochSnapshot::of(matrix);
    prime.dirty.push_back(matrix.take_dirty_cells());
    core::DetectionReport report;
    detector.on_epoch(prime, report);
  }

  std::uint64_t work = 0;
  std::size_t rings = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t d = 0; d < kDirtyPerEpoch; ++d) {
      const auto ratee = static_cast<rating::NodeId>(rng.next_below(kNodes));
      auto rater = static_cast<rating::NodeId>(rng.next_below(kNodes));
      if (rater == ratee)
        rater = static_cast<rating::NodeId>((rater + 1) % kNodes);
      matrix.add_rating(ratee, rater,
                        rng.chance(0.8) ? rating::Score::kPositive
                                        : rating::Score::kNegative);
    }
    detect::EpochSnapshot snap = detect::EpochSnapshot::of(matrix);
    if (incremental) snap.dirty.push_back(matrix.take_dirty_cells());
    core::DetectionReport report;
    state.ResumeTiming();

    detector.on_epoch(snap, report);

    work = report.cost.total();
    rings = report.rings.size();
    benchmark::DoNotOptimize(report);
  }
  state.counters["work_units"] =
      benchmark::Counter(static_cast<double>(work));
  state.counters["rings"] = benchmark::Counter(static_cast<double>(rings));
  state.counters["incremental"] = benchmark::Counter(
      detector.last_pass_incremental() ? 1.0 : 0.0);
}
BENCHMARK(BM_RingEpoch10k)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

// Parallel-epoch scaling: wall time of one full global epoch through the
// sharded service. Arg 0: shard count. Arg 1: epoch scan threads, with 0
// selecting the serial coordinator (parallel_epoch = false) as the
// baseline. The trace is 10k nodes at ~1% cell density with planted
// colluding pairs (1 per 40 nodes); overlap is off so the measurement is
// the pure frozen-state scan, not ingest admission. The ISSUE gate reads
// the (shards=4, threads=0) vs (shards=4, threads=hw) ratio.
void BM_ParallelEpochService(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const std::size_t n = g_smoke ? 1000 : 10000;
  const std::size_t cells = n * n / 100;  // ~1% density

  service::ServiceConfig cfg;
  cfg.num_nodes = n;
  cfg.num_shards = shards;
  cfg.queue_capacity = 8192;
  cfg.epoch_ratings = 1u << 30;  // epochs only via force_epoch()
  cfg.detector = "optimized";
  cfg.detector_config = config();
  cfg.record_reports = false;
  cfg.parallel_epoch = threads != 0;
  cfg.epoch_overlap = false;
  cfg.epoch_scan_threads = threads == 0 ? 1 : threads;
  service::ReputationService svc(cfg);

  util::Rng rng(n);
  const std::size_t pairs = std::max<std::size_t>(1, n / 40);
  for (std::size_t p = 0; p < pairs; ++p) {
    const auto a = static_cast<rating::NodeId>(2 * p);
    const auto b = static_cast<rating::NodeId>(2 * p + 1);
    for (int k = 0; k < 40; ++k) {
      svc.ingest({a, b, rating::Score::kPositive, 0});
      svc.ingest({b, a, rating::Score::kPositive, 0});
    }
  }
  for (std::size_t c = 0; c < cells; ++c) {
    const auto rater = static_cast<rating::NodeId>(rng.next_below(n));
    auto ratee = static_cast<rating::NodeId>(rng.next_below(n));
    if (ratee == rater) ratee = static_cast<rating::NodeId>((ratee + 1) % n);
    svc.ingest({rater, ratee,
                rng.chance(ratee < 2 * pairs ? 0.1 : 0.85)
                    ? rating::Score::kPositive
                    : rating::Score::kNegative,
                0});
  }
  svc.drain();

  for (auto _ : state) {
    svc.force_epoch();
    svc.drain();
  }

  const service::ServiceMetrics m = svc.metrics();
  state.counters["epochs"] =
      benchmark::Counter(static_cast<double>(m.epochs_completed));
  state.counters["scan_threads"] =
      benchmark::Counter(static_cast<double>(m.epoch_scan_threads));
  svc.stop();
}
BENCHMARK(BM_ParallelEpochService)
    ->ArgsProduct({{1, 2, 4}, {0, 2, 4}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace

// BENCHMARK_MAIN with a --smoke preamble: strip the flag, restrict the
// run to the service-level family at reduced size, and let every other
// argument pass through to google-benchmark untouched.
int main(int argc, char** argv) {
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke")
      g_smoke = true;
    else
      args.push_back(argv[i]);
  }
  static char smoke_filter[] = "--benchmark_filter=BM_ParallelEpochService";
  if (g_smoke) args.push_back(smoke_filter);
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
