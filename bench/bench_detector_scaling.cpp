// Propositions 4.1 / 4.2: detector complexity scaling. Google-benchmark
// timings plus the detectors' own work-unit counters over growing n with
// all rows high-reputed (the worst case the propositions bound):
// Basic = O(m n^2), Optimized = O(m n).
#include <benchmark/benchmark.h>

#include "core/basic_detector.h"
#include "core/optimized_detector.h"
#include "rating/matrix.h"
#include "rating/store.h"
#include "util/rng.h"

namespace {

using namespace p2prep;

core::DetectorConfig config() {
  core::DetectorConfig c;
  c.positive_fraction_min = 0.8;
  c.complement_fraction_max = 0.2;
  c.frequency_min = 20;
  c.high_rep_threshold = 0.05;
  return c;
}

rating::RatingMatrix make_world(std::size_t n, rating::MatrixBackend backend) {
  util::Rng rng(n);
  rating::RatingStore store(n);
  // 5% of nodes are colluders in consecutive pairs.
  const std::size_t pairs = std::max<std::size_t>(1, n / 40);
  for (std::size_t p = 0; p < pairs; ++p) {
    const auto a = static_cast<rating::NodeId>(2 * p);
    const auto b = static_cast<rating::NodeId>(2 * p + 1);
    for (int k = 0; k < 40; ++k) {
      store.ingest({a, b, rating::Score::kPositive, 0});
      store.ingest({b, a, rating::Score::kPositive, 0});
    }
  }
  // Organic background load.
  for (rating::NodeId rater = 0; rater < n; ++rater) {
    for (int k = 0; k < 6; ++k) {
      auto ratee = static_cast<rating::NodeId>(rng.next_below(n));
      if (ratee == rater) ratee = static_cast<rating::NodeId>((ratee + 1) % n);
      store.ingest({rater, ratee,
                    rng.chance(ratee < 2 * pairs ? 0.1 : 0.85)
                        ? rating::Score::kPositive
                        : rating::Score::kNegative,
                    0});
    }
  }
  std::vector<double> reps(n, 0.2);  // everyone high-reputed: m = n
  return rating::RatingMatrix::build(store, reps, 0.05, 0, backend);
}

// Arg 0: n. Arg 1: matrix backend (0 = dense oracle, 1 = sparse rows).
// The dense work counters are the paper's Figure 13 quantities; the sparse
// rows trade the fixed n-wide Basic row scan for an O(row nnz) one at
// identical verdicts, and matrix_bytes shows the footprint gap.
rating::MatrixBackend backend_of(const benchmark::State& state) {
  return state.range(1) == 0 ? rating::MatrixBackend::kDense
                             : rating::MatrixBackend::kSparse;
}

void BM_BasicDetect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto matrix = make_world(n, backend_of(state));
  core::BasicCollusionDetector detector(config());
  std::uint64_t work = 0;
  for (auto _ : state) {
    const auto report = detector.detect(matrix);
    work = report.cost.total();
    benchmark::DoNotOptimize(report);
  }
  state.counters["work_units"] =
      benchmark::Counter(static_cast<double>(work));
  state.counters["work_per_n2"] = benchmark::Counter(
      static_cast<double>(work) / (static_cast<double>(n) * static_cast<double>(n)));
  state.counters["matrix_bytes"] =
      benchmark::Counter(static_cast<double>(matrix.approx_memory_bytes()));
}
BENCHMARK(BM_BasicDetect)
    ->ArgsProduct({{50, 100, 200, 400}, {0, 1}});

void BM_OptimizedDetect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto matrix = make_world(n, backend_of(state));
  core::OptimizedCollusionDetector detector(config());
  std::uint64_t work = 0;
  for (auto _ : state) {
    const auto report = detector.detect(matrix);
    work = report.cost.total();
    benchmark::DoNotOptimize(report);
  }
  state.counters["work_units"] =
      benchmark::Counter(static_cast<double>(work));
  state.counters["work_per_n"] = benchmark::Counter(
      static_cast<double>(work) / static_cast<double>(n));
  state.counters["matrix_bytes"] =
      benchmark::Counter(static_cast<double>(matrix.approx_memory_bytes()));
}
BENCHMARK(BM_OptimizedDetect)
    ->ArgsProduct({{50, 100, 200, 400}, {0, 1}});

}  // namespace

BENCHMARK_MAIN();
