// Micro-benchmarks of core building blocks: rating ingestion, matrix
// snapshotting, Formula (2) evaluation.
#include <benchmark/benchmark.h>

#include "core/formula.h"
#include "rating/matrix.h"
#include "rating/store.h"
#include "util/rng.h"

namespace {

using namespace p2prep;

void BM_StoreIngest(benchmark::State& state) {
  rating::RatingStore store(1000);
  util::Rng rng(3);
  for (auto _ : state) {
    const auto rater = static_cast<rating::NodeId>(rng.next_below(1000));
    auto ratee = static_cast<rating::NodeId>(rng.next_below(1000));
    if (ratee == rater) ratee = (ratee + 1) % 1000;
    benchmark::DoNotOptimize(
        store.ingest({rater, ratee, rating::Score::kPositive, 0}));
  }
}
BENCHMARK(BM_StoreIngest);

void BM_MatrixBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rating::RatingStore store(n);
  util::Rng rng(n);
  for (std::size_t k = 0; k < n * 30; ++k) {
    const auto rater = static_cast<rating::NodeId>(rng.next_below(n));
    auto ratee = static_cast<rating::NodeId>(rng.next_below(n));
    if (ratee == rater) ratee = static_cast<rating::NodeId>((ratee + 1) % n);
    store.ingest({rater, ratee,
                  rng.chance(0.8) ? rating::Score::kPositive
                                  : rating::Score::kNegative,
                  0});
  }
  std::vector<double> reps(n, 0.1);
  for (auto _ : state) {
    auto matrix = rating::RatingMatrix::build(store, reps, 0.05);
    benchmark::DoNotOptimize(matrix);
  }
}
BENCHMARK(BM_MatrixBuild)->Arg(100)->Arg(200)->Arg(400);

void BM_Formula2(benchmark::State& state) {
  util::Rng rng(11);
  for (auto _ : state) {
    const auto n_i = 1 + rng.next_below(1000);
    const auto n_ij = rng.next_below(n_i + 1);
    benchmark::DoNotOptimize(core::formula2_satisfied(
        rng.uniform(-500.0, 500.0), 0.8, 0.2, n_i, n_ij));
  }
}
BENCHMARK(BM_Formula2);

void BM_WindowReset(benchmark::State& state) {
  rating::RatingStore store(500);
  util::Rng rng(5);
  for (std::size_t k = 0; k < 20000; ++k) {
    const auto rater = static_cast<rating::NodeId>(rng.next_below(500));
    auto ratee = static_cast<rating::NodeId>(rng.next_below(500));
    if (ratee == rater) ratee = (ratee + 1) % 500;
    store.ingest({rater, ratee, rating::Score::kPositive, 0});
  }
  for (auto _ : state) {
    store.reset_window();
  }
}
BENCHMARK(BM_WindowReset);

}  // namespace

BENCHMARK_MAIN();
