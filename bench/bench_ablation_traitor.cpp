// Ablation: traitor (oscillation) attacks across reputation engines.
// Traitors serve honestly until mid-run, then defect. What matters is the
// scoring horizon: lifetime positive-FRACTION scoring (PeerTrust) shields
// a defector behind its earned credit (~parity with honest nodes), while
// signed cumulative sums (Summation/Weighted) bleed quickly once negatives
// pour in, and TrustGuard's window scoring reacts within one period and
// additionally charges a fluctuation penalty. Collusion detection
// correctly stays silent throughout (traitors never collude).
#include <cstdio>

#include "net/experiment.h"
#include "util/table.h"

int main() {
  using namespace p2prep;

  net::ExperimentSpec spec;
  spec.config.num_nodes = 100;
  spec.config.num_interests = 12;
  spec.config.sim_cycles = 16;
  spec.config.traitor_defect_cycle = 8;
  spec.config.traitor_good_prob_after = 0.05;
  spec.config.seed = 90210;
  spec.roles = net::traitor_roles(6, 3);
  spec.detector = net::DetectorKind::kNone;
  spec.runs = 3;

  util::Table table({"engine", "avg traitor rep (final)",
                     "avg normal rep (final)", "traitor/normal ratio"});
  for (const auto kind :
       {net::EngineKind::kSummation, net::EngineKind::kWeighted,
        net::EngineKind::kPeerTrust, net::EngineKind::kTrustGuard}) {
    spec.engine = kind;
    const net::ExperimentResult r = net::run_experiment(spec);
    double traitor = 0.0;
    for (rating::NodeId id : spec.roles.traitors)
      traitor += r.avg_reputation[id];
    traitor /= static_cast<double>(spec.roles.traitors.size());
    double normal = 0.0;
    std::size_t normals = 0;
    for (rating::NodeId id = 9; id < spec.config.num_nodes; ++id) {
      normal += r.avg_reputation[id];
      ++normals;
    }
    normal /= static_cast<double>(normals);
    table.add_row({std::string(net::to_string(kind)),
                   util::Table::num(traitor, 5), util::Table::num(normal, 5),
                   util::Table::num(normal > 0 ? traitor / normal : 0.0, 2)});
  }

  std::printf("=== Ablation: traitor attack (defect at cycle %zu of %zu) "
              "===\n%s\n"
              "expected: lifetime-fraction scoring (PeerTrust) shields "
              "traitors (~1.0 ratio); signed sums and TrustGuard's "
              "windowed fluctuation-penalized score punish defection\n",
              spec.config.traitor_defect_cycle, spec.config.sim_cycles,
              table.render().c_str());
  return 0;
}
