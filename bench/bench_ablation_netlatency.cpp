// Ablation: wall-clock cost of a decentralized detection round under a
// per-hop message latency model, vs the size of the manager set, for
// pipelined and sequential managers. Routing hops grow ~log(#managers),
// so the pipelined round time tracks the slowest single check while the
// sequential one stacks round trips.
#include <cstdio>

#include "managers/latency.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace p2prep;

managers::DecentralizedReputationSystem make_system(std::size_t managers_n) {
  managers::DecentralizedReputationSystem::Config config;
  config.num_nodes = 200;
  config.detector.positive_fraction_min = 0.8;
  config.detector.complement_fraction_max = 0.2;
  config.detector.frequency_min = 20;
  config.detector.high_rep_threshold = 0.0;

  std::vector<rating::NodeId> manager_ids;
  for (rating::NodeId id = 0; id < managers_n; ++id)
    manager_ids.push_back(id);
  managers::DecentralizedReputationSystem sys(config, manager_ids);

  util::Rng rng(31415);
  for (std::size_t p = 0; p < 6; ++p) {
    const auto a = static_cast<rating::NodeId>(100 + 2 * p);
    const auto b = static_cast<rating::NodeId>(101 + 2 * p);
    for (int k = 0; k < 40; ++k) {
      sys.ingest({a, b, rating::Score::kPositive, 0});
      sys.ingest({b, a, rating::Score::kPositive, 0});
    }
  }
  for (rating::NodeId rater = 0; rater < 200; ++rater) {
    for (int k = 0; k < 5; ++k) {
      auto ratee = static_cast<rating::NodeId>(rng.next_below(200));
      if (ratee == rater) ratee = static_cast<rating::NodeId>((ratee + 1) % 200);
      const bool colluder = ratee >= 100 && ratee <= 111;
      sys.ingest({rater, ratee,
                  rng.chance(colluder ? 0.05 : 0.85)
                      ? rating::Score::kPositive
                      : rating::Score::kNegative,
                  0});
    }
  }
  return sys;
}

}  // namespace

int main() {
  const managers::LatencyModel model{.per_hop_ms = 20.0, .jitter_ms = 10.0,
                                     .seed = 1};
  util::Table table({"managers", "cross checks", "hop msgs", "avg RTT ms",
                     "pipelined ms", "sequential ms"});

  for (std::size_t managers_n : {8u, 16u, 32u, 64u, 128u}) {
    auto sys = make_system(managers_n);
    const auto pipelined = managers::measure_detection_round(
        sys, managers::DetectionMethod::kOptimized, model, true);
    auto sys2 = make_system(managers_n);
    const auto sequential = managers::measure_detection_round(
        sys2, managers::DetectionMethod::kOptimized, model, false);
    table.add_row(
        {util::Table::num(static_cast<std::uint64_t>(managers_n)),
         util::Table::num(static_cast<std::uint64_t>(pipelined.cross_checks)),
         util::Table::num(static_cast<std::uint64_t>(pipelined.messages)),
         util::Table::num(pipelined.avg_check_rtt_ms, 1),
         util::Table::num(pipelined.completion_ms, 1),
         util::Table::num(sequential.completion_ms, 1)});
  }

  std::printf("=== Ablation: decentralized detection round latency "
              "(per-hop %.0fms + %.0fms jitter) ===\n%s\n",
              model.per_hop_ms, model.jitter_ms, table.render().c_str());
  return 0;
}
