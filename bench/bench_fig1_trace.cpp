// Figure 1: analysis of the (synthetic) Amazon and Overstock traces —
// the Sec. III evidence for the collusion characteristics C1-C5.
//
//  (a) ratings (positive/negative) vs seller reputation band: higher
//      reputation attracts more transactions; suspicious sellers sit in
//      the [0.94, 0.97] band with outsized volume.
//  (b) rating patterns of selected raters on one suspicious seller over
//      time: partner colluders rate 5 continuously, a rival rates 1
//      continuously, normal raters mix.
//  (c) per-rater ratings-per-day statistics for suspicious vs unsuspicious
//      sellers: colluding raters rate far more frequently (C4).
//  (d) the Overstock interaction graph (edge iff > 20 ratings between a
//      pair): suspected colluders pair up; chains occur but no group of
//      3+ mutually rates (C5).
#include <algorithm>
#include <cstdio>

#include "trace/amazon.h"
#include "trace/analysis.h"
#include "trace/overstock.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace p2prep;

void figure_1a(const trace::AmazonTrace& tr) {
  const auto profiles = trace::seller_profiles(tr.ratings, tr.num_sellers);
  // The paper samples sellers per reputation level; print a spread of
  // sellers ordered by final reputation.
  auto sorted = profiles;
  std::sort(sorted.begin(), sorted.end(),
            [](const trace::SellerProfile& a, const trace::SellerProfile& b) {
              return a.reputation > b.reputation;
            });
  util::Table table({"seller", "reputation", "positive", "negative",
                     "total"});
  for (std::size_t k = 0; k < sorted.size();
       k += std::max<std::size_t>(1, sorted.size() / 24)) {
    const auto& p = sorted[k];
    table.add_row({std::to_string(p.seller),
                   util::Table::num(p.reputation, 3),
                   util::Table::num(p.positives), util::Table::num(p.negatives),
                   util::Table::num(p.total())});
  }
  std::printf("--- Fig. 1(a): ratings vs seller reputation ---\n%s",
              table.render().c_str());
  // C1 aggregate: transaction volume by reputation band.
  util::RunningStats high;
  util::RunningStats low;
  for (const auto& p : profiles) {
    if (p.reputation >= 0.90) high.add(static_cast<double>(p.total()));
    else if (p.reputation <= 0.85) low.add(static_cast<double>(p.total()));
  }
  std::printf("band volume: mean %.0f ratings for sellers >= 0.90 vs "
              "%.0f for sellers <= 0.85\n\n",
              high.mean(), low.mean());
}

void figure_1b(const trace::AmazonTrace& tr) {
  if (tr.truth.suspicious_sellers.empty()) return;
  const trace::UserId seller = tr.truth.suspicious_sellers.front();
  // Pick up to 2 partners, the rival if any, and 2 organic frequent raters.
  std::vector<std::pair<const char*, trace::UserId>> raters;
  for (const auto& [partner, s] : tr.truth.collusion_pairs) {
    if (s == seller && raters.size() < 2) raters.push_back({"partner", partner});
  }
  for (const auto& [rival, s] : tr.truth.rival_pairs) {
    if (s == seller) raters.push_back({"rival", rival});
  }
  const auto stats = trace::rater_daily_stats(tr.ratings, seller, tr.days);
  for (const auto& s : stats) {
    if (raters.size() >= 5) break;
    bool special = false;
    for (const auto& [label, id] : raters) special |= (id == s.rater);
    if (!special) raters.push_back({"normal", s.rater});
  }

  std::printf("--- Fig. 1(b): rating timelines on suspicious seller %u ---\n",
              seller);
  for (const auto& [label, rater] : raters) {
    const auto timeline = trace::rating_timeline(tr.ratings, rater, seller);
    std::printf("%-8s rater %-7u (%3zu ratings): ", label, rater,
                timeline.size());
    // Compact strip: one character per rating (chronological).
    std::size_t shown = 0;
    for (const auto& p : timeline) {
      if (shown++ >= 60) break;
      std::printf("%d", p.stars);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void figure_1c(const trace::AmazonTrace& tr) {
  std::printf("--- Fig. 1(c): per-rater ratings/day for suspicious vs "
              "unsuspicious sellers ---\n");
  util::Table table({"seller", "class", "top-rater avg/day", "max/day",
                     "raters>15/yr"});
  auto emit = [&](trace::UserId seller, const char* cls) {
    const auto stats = trace::rater_daily_stats(tr.ratings, seller, tr.days);
    if (stats.empty()) return;
    std::size_t frequent = 0;
    const double yr_scale = 365.0 / static_cast<double>(tr.days);
    for (const auto& s : stats) {
      if (static_cast<double>(s.total) * yr_scale > 15.0) ++frequent;
    }
    table.add_row({std::to_string(seller), cls,
                   util::Table::num(stats.front().avg_per_day, 4),
                   util::Table::num(std::uint64_t{stats.front().max_per_day}),
                   util::Table::num(static_cast<std::uint64_t>(frequent))});
  };
  for (std::size_t k = 0; k < 5 && k < tr.truth.suspicious_sellers.size(); ++k)
    emit(tr.truth.suspicious_sellers[k], "suspicious");
  std::size_t shown = 0;
  for (trace::UserId s = 0; s < tr.num_sellers && shown < 4; ++s) {
    if (std::find(tr.truth.suspicious_sellers.begin(),
                  tr.truth.suspicious_sellers.end(),
                  s) == tr.truth.suspicious_sellers.end()) {
      emit(s, "unsuspicious");
      ++shown;
    }
  }
  std::printf("%s\n", table.render().c_str());
}

void figure_1d(const trace::OverstockTrace& tr) {
  const auto graph = trace::build_interaction_graph(tr.ratings, 20);
  const auto comps = graph.components();
  const auto hist = graph.component_size_histogram();
  std::printf("--- Fig. 1(d): Overstock interaction graph (edge iff >20 "
              "ratings) ---\n");
  std::printf("nodes=%zu edges=%zu components=%zu triangles=%zu "
              "pairwise-only=%s max-degree=%zu\n",
              graph.node_count(), graph.edge_count(), comps.size(),
              graph.triangle_count(), graph.pairwise_only() ? "yes" : "no",
              graph.max_degree());
  util::Table table({"component size", "count"});
  for (const auto& [size, count] : hist)
    table.add_row({util::Table::num(static_cast<std::uint64_t>(size)),
                   util::Table::num(static_cast<std::uint64_t>(count))});
  std::printf("%s", table.render().c_str());
  std::printf("(injected colluding pairs: %zu)\n\n",
              tr.truth.collusion_pairs.size());
}

void suspicious_filter_summary(const trace::AmazonTrace& tr) {
  // The paper's filter: >= 20 ratings per pair per year found 18 sellers /
  // 139 raters; run the same filter and compare against ground truth.
  const auto summary = trace::find_suspicious(
      tr.ratings, static_cast<std::uint32_t>(
                      20.0 * static_cast<double>(tr.days) / 365.0));
  std::size_t true_sellers = 0;
  for (trace::UserId s : summary.sellers) {
    if (std::find(tr.truth.suspicious_sellers.begin(),
                  tr.truth.suspicious_sellers.end(),
                  s) != tr.truth.suspicious_sellers.end())
      ++true_sellers;
  }
  std::printf("suspicious-pair filter (threshold 20/yr): %zu sellers "
              "(%zu injected, %zu recovered), %zu raters flagged\n\n",
              summary.sellers.size(), tr.truth.suspicious_sellers.size(),
              true_sellers, summary.raters.size());
}

}  // namespace

int main() {
  std::printf("=== Figure 1: marketplace trace analysis (synthetic Amazon/"
              "Overstock; see DESIGN.md substitutions) ===\n\n");
  trace::AmazonTraceConfig amazon_config;
  const trace::AmazonTrace amazon = trace::generate_amazon_trace(amazon_config);
  std::printf("Amazon-mode trace: %zu ratings, %zu sellers, %zu days\n\n",
              amazon.ratings.size(), amazon.num_sellers, amazon.days);
  figure_1a(amazon);
  figure_1b(amazon);
  figure_1c(amazon);
  suspicious_filter_summary(amazon);

  trace::OverstockTraceConfig overstock_config;
  overstock_config.num_users = 20000;       // keep the harness fast
  overstock_config.num_transactions = 90000;
  const trace::OverstockTrace overstock =
      trace::generate_overstock_trace(overstock_config);
  std::printf("Overstock-mode trace: %zu ratings, %zu users\n\n",
              overstock.ratings.size(), overstock.num_users);
  figure_1d(overstock);
  return 0;
}
