// Figure 9: reputation distribution in EigenTrust employing the Optimized
// detection method, B = 0.6 (pretrusted ids 1-3, colluders 4-11).
//
// Expected shape vs Figure 5: the colluders' (previously dominant)
// reputations are reduced to 0, the average reputations of normal nodes
// increase, and pretrusted nodes rise.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace p2prep;

  net::ExperimentSpec spec;
  spec.config = bench::paper_sim_config(/*colluder_good_prob=*/0.6);
  spec.roles = net::paper_roles(8, 3);
  spec.engine = net::EngineKind::kWeighted;
  spec.detector_config = bench::sim_detector_config();
  spec.runs = 5;

  spec.detector = net::DetectorKind::kNone;
  const net::ExperimentResult baseline = net::run_experiment(spec);
  spec.detector = net::DetectorKind::kOptimized;
  const net::ExperimentResult result = net::run_experiment(spec);

  bench::print_reputation_figure(
      "Figure 9: EigenTrust+Optimized, B=0.6", result, spec.roles);
  bench::print_detection_summary(result);

  double colluder_sum = 0.0;
  for (rating::NodeId id : spec.roles.colluders)
    colluder_sum += result.avg_reputation[id];
  double normal_gain = 0.0;
  for (rating::NodeId id = 11; id < spec.config.num_nodes; ++id)
    normal_gain += result.avg_reputation[id] - baseline.avg_reputation[id];
  std::printf("shape check: colluder reputation sum %.6f (expect 0); "
              "normal nodes' total reputation gain vs Fig.5 baseline: %+.4f\n",
              colluder_sum, normal_gain);
  return 0;
}
