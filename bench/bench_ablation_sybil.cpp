// Ablation: Sybil boosting (the paper's future-work threat) against the
// detector variants. Mutual sybil rings are collusion collectives the
// default (mutual-evidence) predicate catches; one-directional boosts from
// throwaway identities evade it by construction and need the one-sided
// mode (DetectorConfig::require_mutual = false), whose false-positive
// exposure this harness also measures.
#include <cstdio>

#include "core/optimized_detector.h"
#include "net/simulator.h"
#include "reputation/weighted.h"
#include "util/table.h"

namespace {

using namespace p2prep;

struct Outcome {
  bool all_targets_zeroed = true;
  std::size_t honest_flagged = 0;
  double target_reputation = 0.0;
};

Outcome run(const net::NodeRoles& roles, bool require_mutual,
            std::size_t num_targets) {
  net::SimConfig config;
  config.num_nodes = 150;
  config.sim_cycles = 10;
  config.seed = 7777;

  core::DetectorConfig dc;
  dc.positive_fraction_min = 0.9;
  dc.complement_fraction_max = 0.7;
  dc.frequency_min = 20;
  dc.high_rep_threshold = 0.05;
  dc.require_mutual = require_mutual;

  reputation::WeightedFeedbackEngine engine;
  core::OptimizedCollusionDetector detector(dc);
  net::Simulator sim(config, roles, engine, &detector);
  sim.run();

  Outcome out;
  for (std::size_t t = 0; t < num_targets; ++t) {
    const auto target = static_cast<rating::NodeId>(3 + t);
    out.target_reputation += engine.reputation(target);
    if (!sim.manager().detected().contains(target))
      out.all_targets_zeroed = false;
  }
  for (rating::NodeId id : sim.manager().detected()) {
    if (roles.type_of(id) == net::NodeType::kNormal) ++out.honest_flagged;
  }
  return out;
}

}  // namespace

int main() {
  constexpr std::size_t kTargets = 2;
  constexpr std::size_t kSybils = 4;

  util::Table table({"attack", "detector mode", "targets zeroed",
                     "honest flagged", "targets' final reputation"});
  auto row = [&](const char* attack, const char* mode, const Outcome& o) {
    table.add_row({attack, mode, o.all_targets_zeroed ? "yes" : "NO",
                   util::Table::num(static_cast<std::uint64_t>(
                       o.honest_flagged)),
                   util::Table::num(o.target_reputation, 4)});
  };

  const net::NodeRoles mutual = net::sybil_roles(kTargets, kSybils, true);
  const net::NodeRoles oneway = net::sybil_roles(kTargets, kSybils, false);

  row("mutual sybil ring", "mutual evidence (paper)",
      run(mutual, true, kTargets));
  row("mutual sybil ring", "one-sided", run(mutual, false, kTargets));
  row("one-way sybil boost", "mutual evidence (paper)",
      run(oneway, true, kTargets));
  row("one-way sybil boost", "one-sided", run(oneway, false, kTargets));

  std::printf("=== Ablation: sybil boosting, %zu targets x %zu sybils ===\n%s\n"
              "expected: mutual rings caught either way; one-way boosts "
              "evade the paper's mutual predicate and need one-sided mode; "
              "honest collateral stays 0 on this workload\n",
              kTargets, kSybils, table.render().c_str());
  return 0;
}
