// Figure 4: the reputation surface of suspected colluders — Formula (1)
// evaluated over (N_(i,j), N_i) at the corners of the suspicious region
// a in (T_a, 1], b in [0, T_b), i.e. the Formula (2) interval.
//
// The paper plots the surface of admissible R_i values; we print the
// interval [lower, upper] over a grid, plus a containment self-check:
// every (a, b) sample inside the region lands inside the interval.
#include <cstdio>

#include "core/formula.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace p2prep;

  constexpr double kTa = 0.8;
  constexpr double kTb = 0.2;

  util::Table table({"N_i", "N_(i,j)", "R lower (2Ta*Nij-Ni)",
                     "R upper (2Tb*(Ni-Nij)+2Nij-Ni)"});
  for (std::uint64_t n_i : {50ull, 100ull, 200ull, 400ull, 800ull}) {
    for (double frac : {0.25, 0.5, 0.75, 1.0}) {
      const auto n_ij = static_cast<std::uint64_t>(
          frac * static_cast<double>(n_i));
      const core::Formula2Bounds b =
          core::formula2_bounds(kTa, kTb, n_i, n_ij);
      table.add_row({util::Table::num(n_i), util::Table::num(n_ij),
                     util::Table::num(b.lower, 1),
                     util::Table::num(b.upper, 1)});
    }
  }
  std::printf("=== Figure 4: reputation bounds of suspected colluders "
              "(T_a=%.1f, T_b=%.1f) ===\n%s\n",
              kTa, kTb, table.render().c_str());

  // Containment self-check over the suspicious region.
  util::Rng rng(4);
  std::size_t inside = 0;
  constexpr std::size_t kSamples = 100000;
  for (std::size_t s = 0; s < kSamples; ++s) {
    const double a = rng.uniform(kTa, 1.0);
    const double b = rng.uniform(0.0, kTb);
    const auto n_i =
        static_cast<std::uint64_t>(rng.uniform_int(1, 1000));
    const auto n_ij = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_i)));
    const double r = core::formula1_reputation(a, b, n_i, n_ij);
    if (core::formula2_satisfied(r, kTa, kTb, n_i, n_ij)) ++inside;
  }
  std::printf("containment self-check: %zu/%zu region samples inside the "
              "Formula (2) interval (expect all)\n",
              inside, kSamples);
  return inside == kSamples ? 0 : 1;
}
