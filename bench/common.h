// Shared helpers for the figure-regeneration harnesses. Each bench binary
// prints the same rows/series its paper figure shows; node ids are printed
// 1-based to match the paper's labels (its node 1 is NodeId 0).
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>

#include "net/experiment.h"
#include "net/roles.h"
#include "util/table.h"

namespace p2prep::bench {

inline int paper_id(rating::NodeId id) { return static_cast<int>(id) + 1; }

inline const char* type_label(const net::NodeRoles& roles, rating::NodeId id) {
  switch (roles.type_of(id)) {
    case net::NodeType::kPretrusted: return "pretrusted";
    case net::NodeType::kColluder: return "colluder";
    case net::NodeType::kNormal: return "normal";
  }
  return "?";
}

/// The paper's Sec. V configuration; only the colluder quality B varies
/// between figures.
inline net::SimConfig paper_sim_config(double colluder_good_prob) {
  net::SimConfig config;  // defaults already encode Sec. V
  config.colluder_good_prob = colluder_good_prob;
  return config;
}

/// Detector thresholds used for the simulation experiments. The paper does
/// not state the T_a/T_b values used in Sec. V (only the trace-derived
/// Amazon values); these sit between the colluders' service quality
/// (B <= 0.6) and normal nodes' 0.8 so that C2 discriminates (DESIGN.md).
inline core::DetectorConfig sim_detector_config() {
  core::DetectorConfig c;
  c.positive_fraction_min = 0.9;
  c.complement_fraction_max = 0.7;
  c.frequency_min = 20;
  c.high_rep_threshold = 0.05;
  return c;
}

/// Prints the "(a) All nodes" + "(b) First 20 nodes" pair every reputation
/// figure in the paper uses.
inline void print_reputation_figure(const std::string& title,
                                    const net::ExperimentResult& result,
                                    const net::NodeRoles& roles,
                                    std::size_t first_k = 20) {
  std::printf("=== %s ===\n", title.c_str());

  // (a) all nodes: compact distribution statistics + the top nodes.
  double max_rep = 0.0;
  double sum = 0.0;
  rating::NodeId argmax = 0;
  for (rating::NodeId id = 0; id < result.avg_reputation.size(); ++id) {
    sum += result.avg_reputation[id];
    if (result.avg_reputation[id] > max_rep) {
      max_rep = result.avg_reputation[id];
      argmax = id;
    }
  }
  std::printf("(a) all %zu nodes: sum=%.4f max=%.4f at node %d (%s)\n",
              result.avg_reputation.size(), sum, max_rep, paper_id(argmax),
              type_label(roles, argmax));

  // (b) first `first_k` nodes, the paper's zoomed bar chart.
  util::Table table({"node", "type", "avg_reputation", "bar"});
  for (rating::NodeId id = 0; id < first_k &&
                              id < result.avg_reputation.size(); ++id) {
    const double rep = result.avg_reputation[id];
    std::string bar;
    if (max_rep > 0.0) {
      bar.assign(static_cast<std::size_t>(rep / max_rep * 40.0), '#');
    }
    table.add_row({std::to_string(paper_id(id)), type_label(roles, id),
                   util::Table::num(rep, 5), bar});
  }
  std::printf("(b) first %zu nodes:\n%s\n", first_k, table.render().c_str());
}

inline void print_detection_summary(const net::ExperimentResult& result) {
  std::printf(
      "detection: recall=%.3f false_positives=%.2f  "
      "requests-to-colluders=%.2f%%  engine_cost=%.0f detector_cost=%.0f\n\n",
      result.avg_recall, result.avg_false_positives,
      result.avg_percent_to_colluders, result.avg_engine_cost,
      result.avg_detector_cost);
}

}  // namespace p2prep::bench
