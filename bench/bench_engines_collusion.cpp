// Ablation: how the five reputation engines fare against pair collusion
// WITHOUT any collusion detection attached — the landscape the paper's
// related-work section describes (mitigation by calculation vs the
// detection the paper contributes).
//
// Expected pattern: Summation and the paper's weighted variant reward
// colluders outright; full EigenTrust dilutes them through row
// normalization and pretrusted restart; PeerTrust damps them through
// credibility; none *eliminates* them — which is the paper's motivation.
#include <cstdio>

#include "net/experiment.h"
#include "util/table.h"

int main() {
  using namespace p2prep;

  net::ExperimentSpec spec;
  spec.config.num_nodes = 100;  // GossipTrust simulates per-message; keep modest
  spec.config.num_interests = 12;
  spec.config.sim_cycles = 10;
  spec.config.seed = 424242;
  spec.roles = net::paper_roles(8, 3);
  spec.detector = net::DetectorKind::kNone;
  spec.runs = 3;

  util::Table table({"engine", "% requests to colluders",
                     "avg colluder rep", "avg normal rep", "engine cost"});

  for (const auto kind :
       {net::EngineKind::kSummation, net::EngineKind::kWeighted,
        net::EngineKind::kEigenTrust, net::EngineKind::kPeerTrust,
        net::EngineKind::kGossipTrust}) {
    spec.engine = kind;
    const net::ExperimentResult r = net::run_experiment(spec);
    double colluder = 0.0;
    for (rating::NodeId id : spec.roles.colluders)
      colluder += r.avg_reputation[id];
    colluder /= static_cast<double>(spec.roles.colluders.size());
    double normal = 0.0;
    std::size_t normals = 0;
    for (rating::NodeId id = 11; id < spec.config.num_nodes; ++id) {
      normal += r.avg_reputation[id];
      ++normals;
    }
    normal /= static_cast<double>(normals);
    table.add_row({std::string(net::to_string(kind)),
                   util::Table::num(r.avg_percent_to_colluders, 2),
                   util::Table::num(colluder, 5), util::Table::num(normal, 5),
                   util::Table::num(r.avg_engine_cost, 0)});
  }

  std::printf("=== Engine comparison under pair collusion (no detection; "
              "%zu nodes, 8 colluders, B=0.2) ===\n%s\n",
              spec.config.num_nodes, table.render().c_str());
  return 0;
}
