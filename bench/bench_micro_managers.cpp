// Micro-benchmarks of the two centralized manager bookkeeping models:
// snapshot (rebuild the dense matrix from the store per detection pass)
// vs incremental (maintain the matrix per rating). The detection results
// are identical; this measures the bookkeeping trade: snapshot pays
// O(n^2) per pass, incremental pays O(1) per rating plus O(n) per epoch.
#include <benchmark/benchmark.h>

#include "core/optimized_detector.h"
#include "managers/centralized.h"
#include "managers/incremental.h"
#include "reputation/summation.h"
#include "util/rng.h"

namespace {

using namespace p2prep;

core::DetectorConfig config() {
  core::DetectorConfig c;
  c.positive_fraction_min = 0.8;
  c.complement_fraction_max = 0.2;
  c.frequency_min = 20;
  c.high_rep_threshold = 0.05;
  return c;
}

std::vector<rating::Rating> workload(std::size_t n, std::size_t events) {
  util::Rng rng(n);
  std::vector<rating::Rating> ratings;
  ratings.reserve(events);
  for (std::size_t k = 0; k < events; ++k) {
    auto rater = static_cast<rating::NodeId>(rng.next_below(n));
    auto ratee = static_cast<rating::NodeId>(rng.next_below(n));
    if (ratee == rater) ratee = static_cast<rating::NodeId>((ratee + 1) % n);
    ratings.push_back({rater, ratee,
                       rng.chance(0.8) ? rating::Score::kPositive
                                       : rating::Score::kNegative,
                       0});
  }
  return ratings;
}

void BM_SnapshotManagerCycle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto ratings = workload(n, n * 20);
  core::OptimizedCollusionDetector detector(config());
  for (auto _ : state) {
    state.PauseTiming();
    reputation::SummationEngine engine;
    managers::CentralizedManager mgr(n, engine, config());
    state.ResumeTiming();
    for (const auto& r : ratings) mgr.ingest(r);
    mgr.update_reputations();
    benchmark::DoNotOptimize(mgr.run_detection(detector));
    mgr.reset_window();
  }
}
BENCHMARK(BM_SnapshotManagerCycle)->Arg(100)->Arg(200)->Arg(400);

void BM_IncrementalManagerCycle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto ratings = workload(n, n * 20);
  core::OptimizedCollusionDetector detector(config());
  for (auto _ : state) {
    state.PauseTiming();
    reputation::SummationEngine engine;
    managers::IncrementalCentralizedManager mgr(n, engine, config());
    state.ResumeTiming();
    for (const auto& r : ratings) mgr.ingest(r);
    mgr.update_reputations();
    benchmark::DoNotOptimize(mgr.run_detection(detector));
    mgr.reset_window();
  }
}
BENCHMARK(BM_IncrementalManagerCycle)->Arg(100)->Arg(200)->Arg(400);

void BM_SnapshotBuildOnly(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  reputation::SummationEngine engine;
  managers::CentralizedManager mgr(n, engine, config());
  for (const auto& r : workload(n, n * 20)) mgr.ingest(r);
  mgr.update_reputations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.snapshot());
  }
}
BENCHMARK(BM_SnapshotBuildOnly)->Arg(100)->Arg(200)->Arg(400);

}  // namespace

BENCHMARK_MAIN();
