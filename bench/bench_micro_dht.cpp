// Micro-benchmarks of the Chord substrate: lookup latency and hop counts
// vs ring size, and ring (re)construction cost.
#include <benchmark/benchmark.h>

#include "dht/chord.h"
#include "util/rng.h"

namespace {

using namespace p2prep;

dht::ChordRing make_ring(std::size_t n) {
  dht::ChordRing ring;
  for (rating::NodeId id = 0; id < n; ++id) ring.add_node(id);
  ring.rebuild();
  return ring;
}

void BM_ChordLookup(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const dht::ChordRing ring = make_ring(n);
  util::Rng rng(n);
  std::uint64_t hops = 0;
  std::uint64_t lookups = 0;
  for (auto _ : state) {
    const auto start = static_cast<rating::NodeId>(rng.next_below(n));
    const auto result = ring.lookup(start, rng.next());
    hops += result.hops;
    ++lookups;
    benchmark::DoNotOptimize(result);
  }
  state.counters["avg_hops"] = benchmark::Counter(
      static_cast<double>(hops) / static_cast<double>(lookups));
}
BENCHMARK(BM_ChordLookup)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_ChordRebuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    dht::ChordRing ring;
    for (rating::NodeId id = 0; id < n; ++id) ring.add_node(id);
    state.ResumeTiming();
    ring.rebuild();
    benchmark::DoNotOptimize(ring);
  }
}
BENCHMARK(BM_ChordRebuild)->Arg(64)->Arg(256)->Arg(1024);

void BM_ManagerOf(benchmark::State& state) {
  const dht::ChordRing ring = make_ring(256);
  util::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ring.manager_of(static_cast<rating::NodeId>(rng.next_below(100000))));
  }
}
BENCHMARK(BM_ManagerOf);

}  // namespace

BENCHMARK_MAIN();
