// Figure 11: reputation distribution in EigenTrust employing the Optimized
// detection method with compromised pretrusted nodes (same cast as Fig. 7:
// n1 colludes with n4, n2 with n6; B = 0.2).
//
// Expected shape vs Figure 7: both the colluders AND the two compromised
// pretrusted nodes end with reputation 0; the clean pretrusted node (id 3)
// keeps a high reputation; normal nodes gain. Note: detecting the
// compromised pretrusted nodes requires the accomplice-propagation
// extension (core/accomplice.h) — their good service erases the paper's
// C2 evidence, so the pairwise predicate alone cannot flag them.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace p2prep;

  net::ExperimentSpec spec;
  spec.config = bench::paper_sim_config(/*colluder_good_prob=*/0.2);
  spec.roles = net::compromised_roles();
  spec.engine = net::EngineKind::kWeighted;
  spec.detector_config = bench::sim_detector_config();
  spec.detector = net::DetectorKind::kOptimized;
  spec.runs = 5;

  const net::ExperimentResult result = net::run_experiment(spec);
  bench::print_reputation_figure(
      "Figure 11: EigenTrust+Optimized, compromised pretrusted, B=0.2",
      result, spec.roles);
  bench::print_detection_summary(result);

  std::printf("shape check: compromised pretrusted n1=%.6f n2=%.6f "
              "(expect 0); clean pretrusted n3=%.5f (expect high); "
              "colluder detection rate n4=%.2f n6=%.2f\n",
              result.avg_reputation[0], result.avg_reputation[1],
              result.avg_reputation[2], result.detection_rate[3],
              result.detection_rate[5]);
  return 0;
}
