// Elastic-resharding bench: grows the service 4 -> 8 shards while a
// producer thread sustains full-speed ingest, and reports what the resize
// cost the live traffic:
//
//   steady_krps      ingest rate before the resize (thousands/sec)
//   handoff_ms       the resize call's blocking window (fence + key move
//                    + durable commit)
//   dip_krps         slowest 100 ms bucket that overlaps the handoff
//   recovery_ms      time from the resize start until a bucket is back at
//                    >= 90% of the steady rate
//   keys_moved       nodes whose owner shard changed (~ nodes / S_old -
//                    nodes / S_new of the id space)
//
// The handoff only parks workers for the moving key range's transfer, so
// the dip should be a brief dent, not a stall: non-moving traffic keeps
// enqueueing into the swapped routing table throughout.
//
//   bench_reshard [--smoke]
//
// --smoke shrinks the workload so CI can assert the path end-to-end (the
// resize commits, traffic survives, stats print) in well under a second.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "service/service.h"
#include "util/rng.h"

namespace {

using namespace p2prep;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kBucketMs = 100;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  const std::size_t num_nodes = smoke ? 512 : 4096;
  const double steady_phase_ms = smoke ? 150.0 : 2000.0;
  const double settle_phase_ms = smoke ? 150.0 : 2000.0;

  service::ServiceConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.num_shards = 4;
  cfg.queue_capacity = 8192;
  cfg.epoch_scope = service::EpochScope::kGlobal;
  cfg.epoch_ratings = smoke ? 2048 : 16384;
  cfg.detector = "optimized";
  cfg.detector_config.positive_fraction_min = 0.8;
  cfg.detector_config.complement_fraction_max = 0.2;
  cfg.detector_config.frequency_min = 20;
  cfg.detector_config.high_rep_threshold = 0.05;
  cfg.record_reports = false;

  service::ReputationService svc(cfg);

  // Producer: full-speed ingest of a synthetic uniform workload. The
  // ingested counter is sampled into kBucketMs buckets by the main thread.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ingested{0};
  std::thread producer([&] {
    util::Rng rng(42);
    std::uint64_t tick = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto rater = static_cast<rating::NodeId>(rng.next_below(num_nodes));
      auto ratee = static_cast<rating::NodeId>(rng.next_below(num_nodes));
      if (ratee == rater)
        ratee = static_cast<rating::NodeId>((ratee + 1) % num_nodes);
      svc.ingest({rater, ratee,
                  rng.chance(0.8) ? rating::Score::kPositive
                                  : rating::Score::kNegative,
                  static_cast<rating::Tick>(tick++)});
      ingested.fetch_add(1, std::memory_order_relaxed);
    }
  });

  struct Bucket {
    double t_ms;  ///< Bucket end, relative to bench start.
    std::uint64_t count;
  };
  std::vector<Bucket> buckets;
  const auto t0 = Clock::now();
  std::uint64_t last_count = 0;
  auto sample_until = [&](double deadline_ms) {
    while (ms_since(t0) < deadline_ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(kBucketMs));
      const std::uint64_t now_count =
          ingested.load(std::memory_order_relaxed);
      buckets.push_back({ms_since(t0), now_count - last_count});
      last_count = now_count;
    }
  };

  // Phase 1: steady state at 4 shards.
  sample_until(steady_phase_ms);
  double steady_rps = 0.0;
  for (const auto& b : buckets) steady_rps += static_cast<double>(b.count);
  steady_rps *= 1000.0 / steady_phase_ms;

  // Phase 2: resize on this thread while the producer keeps pushing. A
  // sampler thread keeps the bucket series alive through the handoff.
  std::atomic<bool> resize_done{false};
  std::thread sampler([&] {
    while (!resize_done.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(kBucketMs));
      const std::uint64_t now_count =
          ingested.load(std::memory_order_relaxed);
      buckets.push_back({ms_since(t0), now_count - last_count});
      last_count = now_count;
    }
  });
  const double resize_start_ms = ms_since(t0);
  const service::ResizeStats rs = svc.resize(8);
  const double resize_end_ms = ms_since(t0);
  resize_done.store(true, std::memory_order_relaxed);
  sampler.join();

  // Phase 3: settle at 8 shards.
  sample_until(resize_end_ms + settle_phase_ms);

  stop.store(true, std::memory_order_relaxed);
  producer.join();
  svc.drain();

  // Dip: slowest bucket overlapping [resize_start, resize_end]. Recovery:
  // first bucket after resize_start back at >= 90% of steady.
  const double steady_per_bucket =
      steady_rps * static_cast<double>(kBucketMs) / 1000.0;
  double dip_rps = steady_rps;
  double recovery_ms = resize_end_ms - resize_start_ms;
  for (const auto& b : buckets) {
    if (b.t_ms <= resize_start_ms) continue;
    const double rps =
        static_cast<double>(b.count) * 1000.0 / static_cast<double>(kBucketMs);
    if (b.t_ms - static_cast<double>(kBucketMs) <= resize_end_ms)
      dip_rps = std::min(dip_rps, rps);
    if (static_cast<double>(b.count) >= 0.9 * steady_per_bucket) {
      recovery_ms = b.t_ms - resize_start_ms;
      break;
    }
  }

  const service::ServiceMetrics m = svc.metrics();
  std::printf("reshard 4 -> 8 under load (%zu nodes%s)\n", num_nodes,
              smoke ? ", smoke" : "");
  std::printf(
      "steady_krps=%.1f dip_krps=%.1f handoff_ms=%.2f recovery_ms=%.1f "
      "keys_moved=%llu\n",
      steady_rps / 1000.0, dip_rps / 1000.0, rs.duration_ms, recovery_ms,
      static_cast<unsigned long long>(rs.keys_moved));
  std::printf(
      "applied=%llu epochs=%llu shards=%llu map_epoch=%llu resizes=%llu\n",
      static_cast<unsigned long long>(m.ratings_applied),
      static_cast<unsigned long long>(m.epochs_completed),
      static_cast<unsigned long long>(m.current_shard_count),
      static_cast<unsigned long long>(m.shard_map_epoch),
      static_cast<unsigned long long>(m.resizes_completed));
  svc.stop();

  // Smoke assertions: the resize committed and traffic survived it.
  if (m.current_shard_count != 8 || m.resizes_completed != 1 ||
      rs.keys_moved == 0 || m.ratings_applied == 0) {
    std::fprintf(stderr, "FAIL: resize did not commit cleanly\n");
    return 1;
  }
  return 0;
}
