// Micro-benchmarks of the reputation engines' epoch updates: the full
// EigenTrust power iteration (serial and thread-pool parallel) against the
// paper's weighted variant and the eBay summation model.
#include <benchmark/benchmark.h>

#include "rating/types.h"
#include "reputation/eigentrust.h"
#include "reputation/summation.h"
#include "reputation/weighted.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace p2prep;

void feed(reputation::ReputationEngine& engine, std::size_t n,
          std::size_t ratings) {
  util::Rng rng(n * 31 + ratings);
  engine.resize(n);
  engine.set_pretrusted({0, 1, 2});
  for (std::size_t k = 0; k < ratings; ++k) {
    auto i = static_cast<rating::NodeId>(rng.next_below(n));
    auto j = static_cast<rating::NodeId>(rng.next_below(n));
    if (i == j) j = static_cast<rating::NodeId>((j + 1) % n);
    engine.ingest({i, j,
                   rng.chance(0.8) ? rating::Score::kPositive
                                   : rating::Score::kNegative,
                   k});
  }
}

void BM_EigenTrustEpoch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  reputation::EigenTrustEngine engine(n);
  feed(engine, n, n * 40);
  for (auto _ : state) {
    engine.update_epoch();
    benchmark::DoNotOptimize(engine.reputations());
  }
  state.counters["iterations"] =
      benchmark::Counter(static_cast<double>(engine.last_iterations()));
}
BENCHMARK(BM_EigenTrustEpoch)->Arg(100)->Arg(200)->Arg(400);

void BM_EigenTrustEpochParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::ThreadPool pool;
  reputation::EigenTrustEngine engine(n, {}, &pool);
  feed(engine, n, n * 40);
  for (auto _ : state) {
    engine.update_epoch();
    benchmark::DoNotOptimize(engine.reputations());
  }
}
BENCHMARK(BM_EigenTrustEpochParallel)->Arg(200)->Arg(400)->Arg(800);

void BM_WeightedEpoch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  reputation::WeightedFeedbackEngine engine(n);
  feed(engine, n, n * 40);
  for (auto _ : state) {
    engine.update_epoch();
    benchmark::DoNotOptimize(engine.reputations());
  }
}
BENCHMARK(BM_WeightedEpoch)->Arg(200)->Arg(2000);

void BM_SummationEpoch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  reputation::SummationEngine engine(n);
  feed(engine, n, n * 40);
  for (auto _ : state) {
    engine.update_epoch();
    benchmark::DoNotOptimize(engine.reputations());
  }
}
BENCHMARK(BM_SummationEpoch)->Arg(200)->Arg(2000);

void BM_EngineIngest(benchmark::State& state) {
  reputation::WeightedFeedbackEngine engine(1000);
  util::Rng rng(7);
  for (auto _ : state) {
    engine.ingest({static_cast<rating::NodeId>(rng.next_below(1000)),
                   static_cast<rating::NodeId>(rng.next_below(999)),
                   rating::Score::kPositive, 0});
  }
}
BENCHMARK(BM_EngineIngest);

}  // namespace

BENCHMARK_MAIN();
