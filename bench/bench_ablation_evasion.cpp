// Ablation: evasion boundary — what does it cost colluders to dodge the
// detector? Two camouflage axes:
//
//  * rate camouflage — collude just under/over the frequency threshold
//    (T_N = 20 per window; 1 rating/qc = exactly 20/window);
//  * score camouflage — mix negatives into the mutual ratings to duck
//    under T_a.
//
// The interesting output is the TRADE: as camouflage increases, recall
// falls — but so does the reputational boost the collusion was for (the
// colluders' share of requests under no detection). A camouflage level
// that evades detection while still paying off would be an attack; the
// tables show the payoff collapsing before (or roughly where) detection
// loses its grip.
#include <cstdio>

#include "net/experiment.h"
#include "util/table.h"

namespace {

using namespace p2prep;

net::ExperimentSpec base_spec() {
  net::ExperimentSpec spec;
  spec.config.num_nodes = 120;
  spec.config.sim_cycles = 12;
  spec.config.seed = 8086;
  spec.roles = net::paper_roles(8, 3);
  spec.engine = net::EngineKind::kWeighted;
  spec.detector_config.positive_fraction_min = 0.9;
  spec.detector_config.complement_fraction_max = 0.7;
  spec.detector_config.frequency_min = 20;
  spec.runs = 3;
  return spec;
}

}  // namespace

int main() {
  {
    util::Table table({"collusion ratings/qc", "recall",
                       "% requests to colluders (no detection)",
                       "% requests (with detection)"});
    for (std::size_t rate : {3u, 2u, 1u}) {
      net::ExperimentSpec spec = base_spec();
      spec.config.collusion_ratings_per_query_cycle = rate;
      spec.detector = net::DetectorKind::kNone;
      const auto baseline = net::run_experiment(spec);
      spec.detector = net::DetectorKind::kOptimized;
      const auto detected = net::run_experiment(spec);
      table.add_row({util::Table::num(static_cast<std::uint64_t>(rate)),
                     util::Table::num(detected.avg_recall, 3),
                     util::Table::num(baseline.avg_percent_to_colluders, 2),
                     util::Table::num(detected.avg_percent_to_colluders, 2)});
    }
    // Below T_N: 0.5/qc modeled as 1 rating every other query cycle is not
    // expressible; use T_N=41 to place 2/qc (40/window) under the bar.
    net::ExperimentSpec spec = base_spec();
    spec.config.collusion_ratings_per_query_cycle = 2;
    spec.detector_config.frequency_min = 41;
    spec.detector = net::DetectorKind::kOptimized;
    const auto evaded = net::run_experiment(spec);
    spec.detector = net::DetectorKind::kNone;
    const auto payoff = net::run_experiment(spec);
    table.add_row({"2 (T_N=41: evaded)", util::Table::num(evaded.avg_recall, 3),
                   util::Table::num(payoff.avg_percent_to_colluders, 2),
                   util::Table::num(evaded.avg_percent_to_colluders, 2)});
    std::printf("=== Evasion axis 1: collusion rate vs T_N=20/window ===\n%s\n",
                table.render().c_str());
  }

  {
    util::Table table({"collusion positive fraction", "recall",
                       "% requests (no detection)",
                       "% requests (with detection)"});
    for (double pos : {1.0, 0.95, 0.9, 0.85, 0.75, 0.6}) {
      net::ExperimentSpec spec = base_spec();
      spec.config.collusion_positive_prob = pos;
      spec.detector = net::DetectorKind::kNone;
      const auto baseline = net::run_experiment(spec);
      spec.detector = net::DetectorKind::kOptimized;
      const auto detected = net::run_experiment(spec);
      table.add_row({util::Table::num(pos, 2),
                     util::Table::num(detected.avg_recall, 3),
                     util::Table::num(baseline.avg_percent_to_colluders, 2),
                     util::Table::num(detected.avg_percent_to_colluders, 2)});
    }
    std::printf("=== Evasion axis 2: score camouflage vs T_a=0.9 ===\n%s\n"
                "reading: recall drops once the mutual positive fraction "
                "falls below T_a, but the boost (baseline %% of requests) "
                "shrinks with it — camouflage costs the attacker the very "
                "reputation the collusion was buying\n",
                table.render().c_str());
  }
  return 0;
}
