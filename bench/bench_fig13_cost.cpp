// Figure 13: operation cost (counted work units) for thwarting collusion
// vs the number of colluders, for EigenTrust, Unoptimized and Optimized.
//
// Cost definitions (paper Sec. V-C):
//  * EigenTrust — the recursive matrix calculation: the power-iteration
//    engine's arithmetic across the run. Driven by n, so the curve is flat
//    in the number of colluders.
//  * Unoptimized / Optimized — the detectors' matrix scans + checks across
//    the run's detection passes (the host engine's cost is excluded, as in
//    the paper).
//
// Expected shape: Unoptimized far above Optimized and growing with the
// number of colluders (more high-reputed rows to deep-scan); EigenTrust
// flat; Optimized lowest. Absolute crossings between EigenTrust and
// Unoptimized depend on the power iteration's convergence setting and the
// detection cadence, which the paper does not specify (EXPERIMENTS.md).
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace p2prep;

  const std::size_t kColluderCounts[] = {8, 18, 28, 38, 48, 58};
  util::Table table({"colluders", "EigenTrust", "Unoptimized", "Optimized"});

  for (std::size_t colluders : kColluderCounts) {
    net::ExperimentSpec spec;
    spec.config = bench::paper_sim_config(/*colluder_good_prob=*/0.2);
    spec.roles = net::paper_roles(colluders, 3);
    spec.detector_config = bench::sim_detector_config();
    spec.runs = 5;

    // EigenTrust series: full power-iteration reputation calculation.
    spec.engine = net::EngineKind::kEigenTrust;
    spec.detector = net::DetectorKind::kNone;
    const double eigentrust = net::run_experiment(spec).avg_engine_cost;

    // Detection series: hosted on the paper's weighted engine.
    spec.engine = net::EngineKind::kWeighted;
    spec.detector = net::DetectorKind::kBasic;
    const double unoptimized = net::run_experiment(spec).avg_detector_cost;
    spec.detector = net::DetectorKind::kOptimized;
    const double optimized = net::run_experiment(spec).avg_detector_cost;

    table.add_row({util::Table::num(static_cast<std::uint64_t>(colluders)),
                   util::Table::num(eigentrust, 0),
                   util::Table::num(unoptimized, 0),
                   util::Table::num(optimized, 0)});
  }

  std::printf("=== Figure 13: operation cost vs #colluders ===\n%s\n",
              table.render().c_str());
  return 0;
}
