// Ablation: whitewashing (cheap identities). Detected colluders re-enter
// under fresh ids and resume colluding. Windowed detection re-catches
// every generation within one period, so the attacker's traffic share
// stays near the detection-on baseline — whitewashing buys identity
// amnesty, not throughput — while the identity pool burns down.
#include <cstdio>

#include "core/optimized_detector.h"
#include "net/simulator.h"
#include "reputation/weighted.h"
#include "util/table.h"

namespace {

using namespace p2prep;

struct Row {
  double pct_to_colluders = 0.0;
  std::size_t whitewashes = 0;
  std::size_t identities_flagged = 0;
};

Row run(bool whitewash, bool detect) {
  net::SimConfig config;
  config.num_nodes = 200;
  config.sim_cycles = 20;
  config.whitewash_on_detection = whitewash;
  config.seed = 1999;

  core::DetectorConfig dc;
  dc.positive_fraction_min = 0.9;
  dc.complement_fraction_max = 0.7;
  dc.frequency_min = 20;
  dc.high_rep_threshold = 0.05;

  reputation::WeightedFeedbackEngine engine;
  core::OptimizedCollusionDetector detector(dc);
  net::Simulator sim(config, net::paper_roles(8, 3), engine,
                     detect ? &detector : nullptr);
  sim.run();
  return {sim.metrics().percent_to_colluders(), sim.whitewash_count(),
          sim.manager().detected().size()};
}

}  // namespace

int main() {
  util::Table table({"scenario", "% requests to colluders",
                     "identity swaps", "identities flagged"});
  const Row baseline = run(false, false);
  const Row detected = run(false, true);
  const Row washed = run(true, true);
  table.add_row({"no detection", util::Table::num(baseline.pct_to_colluders, 2),
                 "0", "0"});
  table.add_row({"detection", util::Table::num(detected.pct_to_colluders, 2),
                 "0",
                 util::Table::num(static_cast<std::uint64_t>(
                     detected.identities_flagged))});
  table.add_row({"detection + whitewashing",
                 util::Table::num(washed.pct_to_colluders, 2),
                 util::Table::num(static_cast<std::uint64_t>(
                     washed.whitewashes)),
                 util::Table::num(static_cast<std::uint64_t>(
                     washed.identities_flagged))});
  std::printf("=== Ablation: whitewashing after detection (200 nodes, 8 "
              "colluders, 20 cycles) ===\n%s\n",
              table.render().c_str());
  return 0;
}
