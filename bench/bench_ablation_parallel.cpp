// Ablation: thread-pool parallelization of the detector sweeps and the
// EigenTrust mat-vec (the library's two CPU-heavy inner loops).
#include <benchmark/benchmark.h>

#include "core/basic_detector.h"
#include "core/optimized_detector.h"
#include "rating/matrix.h"
#include "rating/store.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace p2prep;

core::DetectorConfig config() {
  core::DetectorConfig c;
  c.positive_fraction_min = 0.8;
  c.complement_fraction_max = 0.2;
  c.frequency_min = 20;
  c.high_rep_threshold = 0.05;
  return c;
}

rating::RatingMatrix make_world(std::size_t n) {
  util::Rng rng(n + 1);
  rating::RatingStore store(n);
  for (std::size_t p = 0; p < n / 20; ++p) {
    const auto a = static_cast<rating::NodeId>(2 * p);
    const auto b = static_cast<rating::NodeId>(2 * p + 1);
    for (int k = 0; k < 40; ++k) {
      store.ingest({a, b, rating::Score::kPositive, 0});
      store.ingest({b, a, rating::Score::kPositive, 0});
    }
  }
  for (rating::NodeId rater = 0; rater < n; ++rater) {
    for (int k = 0; k < 6; ++k) {
      auto ratee = static_cast<rating::NodeId>(rng.next_below(n));
      if (ratee == rater) ratee = static_cast<rating::NodeId>((ratee + 1) % n);
      store.ingest({rater, ratee,
                    rng.chance(0.6) ? rating::Score::kPositive
                                    : rating::Score::kNegative,
                    0});
    }
  }
  std::vector<double> reps(n, 0.2);
  return rating::RatingMatrix::build(store, reps, 0.05);
}

void BM_BasicSerial(benchmark::State& state) {
  const auto matrix = make_world(static_cast<std::size_t>(state.range(0)));
  core::BasicCollusionDetector detector(config());
  for (auto _ : state) benchmark::DoNotOptimize(detector.detect(matrix));
}
BENCHMARK(BM_BasicSerial)->Arg(200)->Arg(600);

void BM_BasicParallel(benchmark::State& state) {
  const auto matrix = make_world(static_cast<std::size_t>(state.range(0)));
  util::ThreadPool pool;
  core::BasicCollusionDetector detector(config(), &pool);
  for (auto _ : state) benchmark::DoNotOptimize(detector.detect(matrix));
}
BENCHMARK(BM_BasicParallel)->Arg(200)->Arg(600);

void BM_OptimizedSerial(benchmark::State& state) {
  const auto matrix = make_world(static_cast<std::size_t>(state.range(0)));
  core::OptimizedCollusionDetector detector(config());
  for (auto _ : state) benchmark::DoNotOptimize(detector.detect(matrix));
}
BENCHMARK(BM_OptimizedSerial)->Arg(600)->Arg(2000);

void BM_OptimizedParallel(benchmark::State& state) {
  const auto matrix = make_world(static_cast<std::size_t>(state.range(0)));
  util::ThreadPool pool;
  core::OptimizedCollusionDetector detector(config(), &pool);
  for (auto _ : state) benchmark::DoNotOptimize(detector.detect(matrix));
}
BENCHMARK(BM_OptimizedParallel)->Arg(600)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();
