// Figure 6: reputation distribution in EigenTrust when colluders offer
// authentic files with probability B = 0.2 (pretrusted ids 1-3, colluder
// ids 4-11, no collusion detection).
//
// Expected shape: with mostly-bad service, the colluders' negative ratings
// damp the mutual boost — their reputations fall well below Figure 5's,
// while pretrusted nodes and lucky early-chosen normal nodes accumulate.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace p2prep;

  net::ExperimentSpec spec;
  spec.config = bench::paper_sim_config(/*colluder_good_prob=*/0.2);
  spec.roles = net::paper_roles(8, 3);
  spec.engine = net::EngineKind::kWeighted;
  spec.detector = net::DetectorKind::kNone;
  spec.runs = 5;

  const net::ExperimentResult result = net::run_experiment(spec);
  bench::print_reputation_figure(
      "Figure 6: EigenTrust, B=0.2, no detection", result, spec.roles);
  bench::print_detection_summary(result);

  double colluder_avg = 0.0;
  for (rating::NodeId id : spec.roles.colluders)
    colluder_avg += result.avg_reputation[id];
  colluder_avg /= static_cast<double>(spec.roles.colluders.size());
  double pretrusted_avg = 0.0;
  for (rating::NodeId id : spec.roles.pretrusted)
    pretrusted_avg += result.avg_reputation[id];
  pretrusted_avg /= static_cast<double>(spec.roles.pretrusted.size());
  std::printf(
      "shape check: avg colluder rep %.5f (vs Fig.5 it should drop), "
      "avg pretrusted %.5f\n",
      colluder_avg, pretrusted_avg);
  return 0;
}
