// Ablation: decentralized deployment costs. Runs the same detection
// workload through the DHT-of-managers protocol with varying manager-set
// sizes and reports check requests, routing hops and total messages —
// the communication side of the method the paper describes but does not
// measure.
#include <cstdio>

#include "core/config.h"
#include "managers/decentralized.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace p2prep;

/// Plants `pairs` colluding pairs plus organic background over n nodes.
void feed(managers::DecentralizedReputationSystem& sys, std::size_t n,
          std::size_t pairs, std::uint64_t seed) {
  util::Rng rng(seed);
  for (std::size_t p = 0; p < pairs; ++p) {
    const auto a = static_cast<rating::NodeId>(2 * p);
    const auto b = static_cast<rating::NodeId>(2 * p + 1);
    for (int k = 0; k < 40; ++k) {
      sys.ingest({a, b, rating::Score::kPositive, 0});
      sys.ingest({b, a, rating::Score::kPositive, 0});
    }
  }
  for (rating::NodeId rater = 0; rater < n; ++rater) {
    for (int k = 0; k < 5; ++k) {
      auto ratee = static_cast<rating::NodeId>(rng.next_below(n));
      if (ratee == rater) ratee = static_cast<rating::NodeId>((ratee + 1) % n);
      sys.ingest({rater, ratee,
                  rng.chance(ratee < 2 * pairs ? 0.1 : 0.85)
                      ? rating::Score::kPositive
                      : rating::Score::kNegative,
                  0});
    }
  }
}

}  // namespace

int main() {
  constexpr std::size_t kNodes = 200;
  constexpr std::size_t kPairs = 4;

  std::printf("=== Ablation: decentralized detection message costs "
              "(n=%zu, %zu colluding pairs) ===\n",
              kNodes, kPairs);
  util::Table table({"managers", "method", "pairs_found", "check_requests",
                     "request_hops", "ingest_msgs", "local_checks"});

  for (std::size_t managers : {10u, 25u, 50u, 100u, 200u}) {
    for (const auto method : {managers::DetectionMethod::kBasic,
                              managers::DetectionMethod::kOptimized}) {
      managers::DecentralizedReputationSystem::Config config;
      config.num_nodes = kNodes;
      config.detector.positive_fraction_min = 0.8;
      config.detector.complement_fraction_max = 0.2;
      config.detector.frequency_min = 20;
      config.detector.high_rep_threshold = 0.0;

      std::vector<rating::NodeId> manager_ids;
      for (rating::NodeId id = 0; id < managers; ++id)
        manager_ids.push_back(id);
      managers::DecentralizedReputationSystem sys(config, manager_ids);
      feed(sys, kNodes, kPairs, 1234);
      const std::uint64_t ingest_msgs = sys.transport_messages();

      const auto outcome = sys.run_detection(method);
      table.add_row(
          {util::Table::num(static_cast<std::uint64_t>(managers)),
           method == managers::DetectionMethod::kBasic ? "Unoptimized"
                                                       : "Optimized",
           util::Table::num(
               static_cast<std::uint64_t>(outcome.report.pairs.size())),
           util::Table::num(outcome.check_requests),
           util::Table::num(outcome.request_hops),
           util::Table::num(ingest_msgs),
           util::Table::num(outcome.local_checks)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("note: hops grow ~log(managers); a larger manager set spreads "
              "shards so more pair checks cross managers\n");
  return 0;
}
