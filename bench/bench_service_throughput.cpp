// Sharded-service throughput scaling: streams a fixed synthetic workload
// through ReputationService in per-shard epoch scope at 1/2/4/8 shards and
// reports ingested ratings/sec plus epoch-latency percentiles.
//
// Why sharding pays even on few cores: the epoch cadence is per-shard
// applied-rating count, so the stream-wide number of detection epochs is
// fixed (~events / epoch_ratings) while each epoch's optimized sweep runs
// over one shard's partition — high-reputed rows divided by S — cutting
// the dominant detection term by the shard count.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "service/service.h"
#include "util/rng.h"

namespace {

using namespace p2prep;

constexpr std::size_t kNodes = 2000;
constexpr std::size_t kEvents = 32 * 1024;

std::vector<rating::Rating> workload() {
  util::Rng rng(42);
  std::vector<rating::Rating> ratings;
  ratings.reserve(kEvents);
  for (std::size_t k = 0; k < kEvents; ++k) {
    auto rater = static_cast<rating::NodeId>(rng.next_below(kNodes));
    auto ratee = static_cast<rating::NodeId>(rng.next_below(kNodes));
    if (ratee == rater)
      ratee = static_cast<rating::NodeId>((ratee + 1) % kNodes);
    ratings.push_back({rater, ratee,
                       rng.chance(0.8) ? rating::Score::kPositive
                                       : rating::Score::kNegative,
                       static_cast<rating::Tick>(k)});
  }
  return ratings;
}

// Arg 0: shard count. Arg 1: matrix backend (0 = dense, 1 = sparse).
// The backend dimension shows the memory trade directly: dense shard
// matrices cost num_shards * kNodes^2 cells regardless of traffic, sparse
// ones O(nnz) — the matrix_bytes counter reports the aggregate gauge.
void BM_ServiceIngestThroughput(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const std::vector<rating::Rating> ratings = workload();

  service::ServiceConfig cfg;
  cfg.num_nodes = kNodes;
  cfg.num_shards = shards;
  cfg.matrix_backend = state.range(1) == 0 ? rating::MatrixBackend::kDense
                                           : rating::MatrixBackend::kSparse;
  cfg.queue_capacity = 4096;
  cfg.epoch_scope = service::EpochScope::kPerShard;
  cfg.epoch_ratings = 1024;
  cfg.detector = "optimized";
  cfg.detector_config.positive_fraction_min = 0.8;
  cfg.detector_config.complement_fraction_max = 0.2;
  cfg.detector_config.frequency_min = 20;
  cfg.detector_config.high_rep_threshold = 0.05;
  cfg.record_reports = false;

  double latency_p99_ms = 0.0;
  std::uint64_t epochs = 0;
  std::uint64_t matrix_bytes = 0;
  for (auto _ : state) {
    service::ReputationService svc(cfg);
    for (const auto& r : ratings) svc.ingest(r);
    svc.drain();
    const service::ServiceMetrics m = svc.metrics();
    latency_p99_ms = m.epoch_latency_ms_p99;
    epochs = m.epochs_completed;
    matrix_bytes = m.matrix_bytes;
    svc.stop();
  }
  const std::uint64_t total_ratings =
      static_cast<std::uint64_t>(state.iterations()) * ratings.size();
  state.SetItemsProcessed(static_cast<std::int64_t>(total_ratings));
  state.counters["epochs"] = static_cast<double>(epochs);
  state.counters["epoch_p99_ms"] = latency_p99_ms;
  state.counters["matrix_bytes"] =
      benchmark::Counter(static_cast<double>(matrix_bytes));
  state.counters["ratings_per_sec"] = benchmark::Counter(
      static_cast<double>(total_ratings), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServiceIngestThroughput)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
