// Ablation: detection latency — how many reputation periods until a
// colluder is first flagged, as a function of how aggressively the pair
// colludes (ratings per query cycle) and of the frequency threshold T_N.
// The window holds ratings_per_qc * query_cycles ratings per pair, so
// detection happens in the first window whenever that product clears T_N
// and stalls forever when it cannot.
#include <cstdio>

#include "net/experiment.h"
#include "util/table.h"

int main() {
  using namespace p2prep;

  net::ExperimentSpec base;
  base.config.num_nodes = 120;
  base.config.sim_cycles = 12;
  base.config.seed = 5150;
  base.roles = net::paper_roles(8, 3);
  base.engine = net::EngineKind::kWeighted;
  base.detector = net::DetectorKind::kOptimized;
  base.detector_config.positive_fraction_min = 0.9;
  base.detector_config.complement_fraction_max = 0.7;
  base.detector_config.frequency_min = 20;
  base.runs = 3;

  {
    util::Table table({"collusion ratings/qc", "ratings/window", "recall",
                       "avg latency (cycles)"});
    for (std::size_t rate : {1u, 2u, 5u, 10u}) {
      net::ExperimentSpec spec = base;
      spec.config.collusion_ratings_per_query_cycle = rate;
      const auto r = net::run_experiment(spec);
      table.add_row(
          {util::Table::num(static_cast<std::uint64_t>(rate)),
           util::Table::num(static_cast<std::uint64_t>(
               rate * spec.config.query_cycles_per_sim_cycle)),
           util::Table::num(r.avg_recall, 3),
           util::Table::num(r.avg_detection_latency, 2)});
    }
    std::printf("=== Ablation: detection latency vs collusion rate "
                "(T_N=20) ===\n%s\n",
                table.render().c_str());
  }

  {
    util::Table table({"T_N", "recall", "avg latency (cycles)"});
    for (std::uint32_t tn : {10u, 20u, 50u, 100u, 190u, 210u}) {
      net::ExperimentSpec spec = base;
      spec.detector_config.frequency_min = tn;
      const auto r = net::run_experiment(spec);
      table.add_row({util::Table::num(std::uint64_t{tn}),
                     util::Table::num(r.avg_recall, 3),
                     util::Table::num(r.avg_detection_latency, 2)});
    }
    std::printf("=== Ablation: detection latency vs T_N (10 ratings/qc -> "
                "200/window) ===\n%s\n",
                table.render().c_str());
  }
  return 0;
}
