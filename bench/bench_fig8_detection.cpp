// Figure 8: reputation distribution under our proposed collusion detection
// methods alone (no pretrusted nodes; colluder ids 1-8; B = 0.2). Both
// Unoptimized and Optimized are run; the paper notes their detection
// results are identical, so the final reputation distributions coincide.
//
// Expected shape: every colluder is detected and pinned to reputation 0;
// some normal nodes carry very high reputations (first-chosen servers keep
// being chosen).
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace p2prep;

  net::ExperimentSpec spec;
  spec.config = bench::paper_sim_config(/*colluder_good_prob=*/0.2);
  spec.roles = net::fig8_roles(8);
  spec.engine = net::EngineKind::kWeighted;
  spec.detector_config = bench::sim_detector_config();
  spec.runs = 5;

  spec.detector = net::DetectorKind::kBasic;
  const net::ExperimentResult unoptimized = net::run_experiment(spec);
  spec.detector = net::DetectorKind::kOptimized;
  const net::ExperimentResult optimized = net::run_experiment(spec);

  bench::print_reputation_figure(
      "Figure 8: Unoptimized detection alone, B=0.2 (colluders 1-8)",
      unoptimized, spec.roles);
  bench::print_detection_summary(unoptimized);
  bench::print_reputation_figure(
      "Figure 8: Optimized detection alone, B=0.2 (colluders 1-8)",
      optimized, spec.roles);
  bench::print_detection_summary(optimized);

  bool identical = true;
  for (std::size_t i = 0; i < unoptimized.avg_reputation.size(); ++i) {
    if (unoptimized.avg_reputation[i] != optimized.avg_reputation[i])
      identical = false;
  }
  std::printf("shape check: Unoptimized/Optimized distributions identical: "
              "%s; colluders zeroed: recall=%.3f/%.3f\n",
              identical ? "yes" : "no", unoptimized.avg_recall,
              optimized.avg_recall);
  return 0;
}
