// Figure 7: reputation distribution in EigenTrust with compromised
// pretrusted nodes, B = 0.2 (pretrusted ids 1-3, colluders 4-11; n1
// additionally colludes with n4 and n2 with n6; no detection).
//
// Expected shape: the pretrusted-weighted ratings boost colluders 4-7 far
// above everyone (even the pretrusted nodes), while colluders 8-11 are
// starved of requests and stay low — compromising pretrusted nodes
// exacerbates collusion and EigenTrust cannot cope.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace p2prep;

  net::ExperimentSpec spec;
  spec.config = bench::paper_sim_config(/*colluder_good_prob=*/0.2);
  spec.roles = net::compromised_roles();
  spec.engine = net::EngineKind::kWeighted;
  spec.detector = net::DetectorKind::kNone;
  spec.runs = 5;

  const net::ExperimentResult result = net::run_experiment(spec);
  bench::print_reputation_figure(
      "Figure 7: EigenTrust, compromised pretrusted (n1-n4, n2-n6), B=0.2",
      result, spec.roles);
  bench::print_detection_summary(result);

  // Boosted colluders (paper ids 4-7 = NodeIds 3-6) vs the starved ones
  // (paper ids 8-11 = NodeIds 7-10).
  double boosted = 0.0;
  for (rating::NodeId id : {3u, 4u, 5u, 6u}) boosted += result.avg_reputation[id];
  double starved = 0.0;
  for (rating::NodeId id : {7u, 8u, 9u, 10u}) starved += result.avg_reputation[id];
  std::printf("shape check: boosted colluders n4-n7 sum %.5f %s starved "
              "n8-n11 sum %.5f\n",
              boosted, boosted > starved ? ">" : "<=", starved);
  return 0;
}
