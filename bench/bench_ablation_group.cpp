// Ablation: group collusion (the paper's future work). Injects mutually
// rating collectives of growing size into rating matrices and compares the
// pairwise detectors against the GroupCollusionDetector: all catch every
// member (a clique is just many pairs), but only the group detector names
// the collective and its structure; its cost stays on the Optimized
// method's order, far below the Basic method's.
#include <cstdio>

#include "core/basic_detector.h"
#include "core/group_detector.h"
#include "core/optimized_detector.h"
#include "detect/registry.h"
#include "detect/snapshot.h"
#include "rating/matrix.h"
#include "rating/store.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace p2prep;

core::DetectorConfig config() {
  core::DetectorConfig c;
  c.positive_fraction_min = 0.8;
  c.complement_fraction_max = 0.2;
  c.frequency_min = 20;
  c.high_rep_threshold = 0.0;
  return c;
}

rating::RatingMatrix make_world(std::size_t n, std::size_t group_size) {
  util::Rng rng(group_size * 131 + n);
  rating::RatingStore store(n);
  // One clique of `group_size` nodes starting at 0.
  for (rating::NodeId a = 0; a < group_size; ++a) {
    for (rating::NodeId b = 0; b < group_size; ++b) {
      if (a == b) continue;
      for (int k = 0; k < 30; ++k)
        store.ingest({a, b, rating::Score::kPositive, 0});
    }
  }
  // Organic background: colluders get panned, normals praised.
  for (rating::NodeId rater = 0; rater < n; ++rater) {
    for (int k = 0; k < 6; ++k) {
      auto ratee = static_cast<rating::NodeId>(rng.next_below(n));
      if (ratee == rater) ratee = static_cast<rating::NodeId>((ratee + 1) % n);
      store.ingest({rater, ratee,
                    rng.chance(ratee < group_size ? 0.05 : 0.85)
                        ? rating::Score::kPositive
                        : rating::Score::kNegative,
                    0});
    }
  }
  std::vector<double> reps(n);
  for (rating::NodeId i = 0; i < n; ++i)
    reps[i] = static_cast<double>(store.window_totals(i).reputation_delta());
  return rating::RatingMatrix::build(store, reps, 0.0,
                                     config().frequency_min);
}

/// A directed boost ring 0 -> 1 -> ... -> ring_size-1 -> 0 (each member
/// rates only its successor), buried in the same organic background. No
/// member pair is mutual, so the paper's pairwise predicates see nothing.
rating::RatingMatrix make_ring_world(std::size_t n, std::size_t ring_size) {
  util::Rng rng(ring_size * 977 + n);
  rating::RatingStore store(n);
  for (rating::NodeId u = 0; u < ring_size; ++u) {
    const auto v = static_cast<rating::NodeId>((u + 1) % ring_size);
    for (int k = 0; k < 30; ++k)
      store.ingest({u, v, rating::Score::kPositive, 0});
  }
  for (rating::NodeId rater = 0; rater < n; ++rater) {
    for (int k = 0; k < 6; ++k) {
      auto ratee = static_cast<rating::NodeId>(rng.next_below(n));
      if (ratee == rater) ratee = static_cast<rating::NodeId>((ratee + 1) % n);
      store.ingest({rater, ratee,
                    rng.chance(ratee < ring_size ? 0.05 : 0.85)
                        ? rating::Score::kPositive
                        : rating::Score::kNegative,
                    0});
    }
  }
  std::vector<double> reps(n);
  for (rating::NodeId i = 0; i < n; ++i)
    reps[i] = static_cast<double>(store.window_totals(i).reputation_delta());
  return rating::RatingMatrix::build(store, reps, 0.0,
                                     config().frequency_min);
}

}  // namespace

int main() {
  constexpr std::size_t kNodes = 200;
  util::Table table({"group size", "pairwise(Basic) members", "basic cost",
                     "pairwise(Optimized) members", "optimized cost",
                     "group detector", "group cost"});

  for (std::size_t size : {2u, 3u, 4u, 6u, 8u}) {
    const auto matrix = make_world(kNodes, size);
    const auto basic = core::BasicCollusionDetector(config()).detect(matrix);
    const auto optimized =
        core::OptimizedCollusionDetector(config()).detect(matrix);
    const auto groups = core::GroupCollusionDetector(config()).detect(matrix);

    std::string group_desc = "none";
    if (!groups.groups.empty()) {
      group_desc = "1 group, " +
                   std::to_string(groups.groups[0].members.size()) +
                   " members, " +
                   std::to_string(groups.groups[0].edges.size()) + " edges";
    }
    table.add_row(
        {util::Table::num(static_cast<std::uint64_t>(size)),
         util::Table::num(static_cast<std::uint64_t>(
             basic.colluders().size())),
         util::Table::num(basic.cost.total()),
         util::Table::num(static_cast<std::uint64_t>(
             optimized.colluders().size())),
         util::Table::num(optimized.cost.total()), group_desc,
         util::Table::num(groups.cost.total())});
  }

  std::printf("=== Ablation: group collusion collectives (n=%zu) ===\n%s\n",
              kNodes, table.render().c_str());

  // Ring-size sweep: directed boost cycles of 2-6 nodes. Size 2 is a
  // mutual pair — the pairwise detectors' domain, invisible to the ring
  // detector by construction (ring_size_min = 3). Sizes 3+ have no mutual
  // edge anywhere, so the pairwise detectors flag nobody; only the
  // registry's streaming ring detector names the cycle.
  util::Table rings({"ring size", "pairwise(Optimized) members",
                     "optimized cost", "ring detector", "ring cost"});
  for (std::size_t size : {2u, 3u, 4u, 5u, 6u}) {
    const auto matrix = make_ring_world(kNodes, size);
    const auto optimized =
        core::OptimizedCollusionDetector(config()).detect(matrix);
    const auto detector =
        detect::DetectorRegistry::global().create("ring", config());
    core::DetectionReport ring_report;
    detector->on_epoch(detect::EpochSnapshot::of(matrix), ring_report);

    std::string ring_desc = "none";
    if (!ring_report.rings.empty()) {
      ring_desc = "1 ring, " +
                  std::to_string(ring_report.rings[0].members.size()) +
                  " members, minN=" +
                  std::to_string(ring_report.rings[0].min_internal_frequency);
    }
    rings.add_row(
        {util::Table::num(static_cast<std::uint64_t>(size)),
         util::Table::num(static_cast<std::uint64_t>(
             optimized.colluders().size())),
         util::Table::num(optimized.cost.total()), ring_desc,
         util::Table::num(ring_report.cost.total())});
  }
  std::printf("=== Ablation: directed boost rings (n=%zu) ===\n%s\n",
              kNodes, rings.render().c_str());
  return 0;
}
