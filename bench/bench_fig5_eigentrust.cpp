// Figure 5: reputation distribution in EigenTrust when colluders offer
// authentic files with probability B = 0.6 (pretrusted ids 1-3, colluder
// ids 4-11, no collusion detection).
//
// Expected shape: colluders gain the highest reputations — above the
// pretrusted nodes — because mutual rating inflation compounds with the
// requests their high reputations attract.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace p2prep;

  net::ExperimentSpec spec;
  spec.config = bench::paper_sim_config(/*colluder_good_prob=*/0.6);
  spec.roles = net::paper_roles(8, 3);
  spec.engine = net::EngineKind::kWeighted;
  spec.detector = net::DetectorKind::kNone;
  spec.runs = 5;

  const net::ExperimentResult result = net::run_experiment(spec);
  bench::print_reputation_figure(
      "Figure 5: EigenTrust, B=0.6, no detection", result, spec.roles);
  bench::print_detection_summary(result);

  double colluder_max = 0.0;
  double pretrusted_max = 0.0;
  for (rating::NodeId id : spec.roles.colluders)
    colluder_max = std::max(colluder_max, result.avg_reputation[id]);
  for (rating::NodeId id : spec.roles.pretrusted)
    pretrusted_max = std::max(pretrusted_max, result.avg_reputation[id]);
  std::printf("shape check: max colluder rep %.5f %s max pretrusted %.5f\n",
              colluder_max, colluder_max > pretrusted_max ? ">" : "<=",
              pretrusted_max);
  return 0;
}
