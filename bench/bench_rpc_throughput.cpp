// RPC front-end throughput: a closed-loop multi-client load generator
// against a loopback RpcServer. Each client thread drives one TCP
// connection synchronously (send, wait for the response, send the next),
// so measured throughput is requests actually answered, not bytes fired
// into a socket buffer. Dimensions: client count (single-rating submits)
// and batch size (amortizing the envelope + round trip over many ratings).
// Sheds are retried by the client's backoff loop and the shed count is
// reported as a benchmark counter — at these queue sizes it should be 0.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>
#include <vector>

#include "rpc/client.h"
#include "rpc/server.h"
#include "service/service.h"
#include "util/rng.h"

namespace {

using namespace p2prep;

constexpr std::size_t kNodes = 2000;
constexpr std::size_t kEvents = 8 * 1024;

std::vector<rating::Rating> workload() {
  util::Rng rng(42);
  std::vector<rating::Rating> ratings;
  ratings.reserve(kEvents);
  for (std::size_t k = 0; k < kEvents; ++k) {
    auto rater = static_cast<rating::NodeId>(rng.next_below(kNodes));
    auto ratee = static_cast<rating::NodeId>(rng.next_below(kNodes));
    if (ratee == rater)
      ratee = static_cast<rating::NodeId>((ratee + 1) % kNodes);
    ratings.push_back({rater, ratee,
                       rng.chance(0.8) ? rating::Score::kPositive
                                       : rating::Score::kNegative,
                       static_cast<rating::Tick>(k)});
  }
  return ratings;
}

service::ServiceConfig service_config() {
  service::ServiceConfig cfg;
  cfg.num_nodes = kNodes;
  cfg.num_shards = 4;
  cfg.queue_capacity = 8192;
  cfg.epoch_scope = service::EpochScope::kPerShard;
  cfg.epoch_ratings = 4096;
  cfg.detector_config.positive_fraction_min = 0.8;
  cfg.detector_config.complement_fraction_max = 0.2;
  cfg.detector_config.frequency_min = 20;
  cfg.record_reports = false;
  return cfg;
}

rpc::RpcClientConfig client_config(std::uint16_t port) {
  rpc::RpcClientConfig cfg;
  cfg.port = port;
  cfg.backoff_initial_ms = 1;
  cfg.max_attempts = 64;
  return cfg;
}

// Arg 0: concurrent closed-loop clients, one rating per request.
void BM_RpcSubmitThroughput(benchmark::State& state) {
  const auto num_clients = static_cast<std::size_t>(state.range(0));
  const std::vector<rating::Rating> ratings = workload();

  service::ReputationService svc(service_config());
  rpc::RpcServer server(svc, rpc::RpcServerConfig{});
  std::atomic<std::uint64_t> sheds{0};

  for (auto _ : state) {
    std::vector<std::thread> clients;
    clients.reserve(num_clients);
    for (std::size_t c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        rpc::RpcClient client(client_config(server.port()));
        if (!client.connect()) std::abort();
        for (std::size_t i = c; i < ratings.size(); i += num_clients)
          if (client.submit_rating_with_retry(ratings[i]).status !=
              rpc::Status::kOk)
            std::abort();
        sheds.fetch_add(client.stats().sheds_seen);
      });
    }
    for (auto& t : clients) t.join();
  }
  svc.drain();

  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kEvents));
  state.counters["sheds"] =
      benchmark::Counter(static_cast<double>(sheds.load()));
  state.counters["applied"] =
      benchmark::Counter(static_cast<double>(svc.metrics().ratings_applied));
}
BENCHMARK(BM_RpcSubmitThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()  // the work happens on the client threads
    ->Unit(benchmark::kMillisecond);

// Arg 0: clients. Arg 1: ratings per SubmitBatch frame.
void BM_RpcBatchThroughput(benchmark::State& state) {
  const auto num_clients = static_cast<std::size_t>(state.range(0));
  const auto batch_size = static_cast<std::size_t>(state.range(1));
  const std::vector<rating::Rating> ratings = workload();

  service::ReputationService svc(service_config());
  rpc::RpcServer server(svc, rpc::RpcServerConfig{});

  // Contiguous per-client slices (submit_batch takes a span).
  const std::size_t slice = ratings.size() / num_clients;

  for (auto _ : state) {
    std::vector<std::thread> clients;
    clients.reserve(num_clients);
    for (std::size_t c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        rpc::RpcClient client(client_config(server.port()));
        if (!client.connect()) std::abort();
        const std::span<const rating::Rating> span(ratings.data() + c * slice,
                                                   slice);
        if (!client.submit_batch(span, batch_size).complete) std::abort();
      });
    }
    for (auto& t : clients) t.join();
  }
  svc.drain();

  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(slice * num_clients));
  state.counters["applied"] =
      benchmark::Counter(static_cast<double>(svc.metrics().ratings_applied));
}
BENCHMARK(BM_RpcBatchThroughput)
    ->Args({4, 16})
    ->Args({4, 64})
    ->Args({4, 256})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
