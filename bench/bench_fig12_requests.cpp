// Figure 12: percentage of file requests sent to colluders vs the number
// of colluders in the system (8..58), for EigenTrust alone, EigenTrust+
// Unoptimized and EigenTrust+Optimized (B = 0.2, setting as Figure 6).
//
// Expected shape: EigenTrust's share is much higher and climbs sharply
// with the number of colluders; the two detection methods stay low and
// nearly identical, rising only slightly.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace p2prep;

  const std::size_t kColluderCounts[] = {8, 18, 28, 38, 48, 58};
  util::Table table({"colluders", "EigenTrust %", "Unoptimized %",
                     "Optimized %"});

  for (std::size_t colluders : kColluderCounts) {
    net::ExperimentSpec spec;
    spec.config = bench::paper_sim_config(/*colluder_good_prob=*/0.2);
    spec.roles = net::paper_roles(colluders, 3);
    spec.engine = net::EngineKind::kWeighted;
    spec.detector_config = bench::sim_detector_config();
    spec.runs = 5;

    spec.detector = net::DetectorKind::kNone;
    const double eigentrust =
        net::run_experiment(spec).avg_percent_to_colluders;
    spec.detector = net::DetectorKind::kBasic;
    const double unoptimized =
        net::run_experiment(spec).avg_percent_to_colluders;
    spec.detector = net::DetectorKind::kOptimized;
    const double optimized =
        net::run_experiment(spec).avg_percent_to_colluders;

    table.add_row({util::Table::num(static_cast<std::uint64_t>(colluders)),
                   util::Table::num(eigentrust, 2),
                   util::Table::num(unoptimized, 2),
                   util::Table::num(optimized, 2)});
  }

  std::printf("=== Figure 12: %% of requests sent to colluders vs #colluders "
              "===\n%s\n",
              table.render().c_str());
  return 0;
}
