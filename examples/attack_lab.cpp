// Attack lab: one run of each adversarial model against EigenTrust with
// the Optimized collusion detector attached, summarizing who wins.
//
//   ./build/examples/attack_lab
//
// Attacks covered: the paper's pair collusion, compromised pretrusted
// nodes, mutual and one-directional sybil boosting, score camouflage,
// traitor oscillation, and whitewashing. See bench_ablation_* for the
// full parameter sweeps behind each row.
#include <cstdio>

#include "core/optimized_detector.h"
#include "net/simulator.h"
#include "reputation/weighted.h"
#include "util/table.h"

namespace {

using namespace p2prep;

struct Outcome {
  double pct_requests = 0.0;
  std::size_t flagged = 0;
  std::size_t swaps = 0;
  bool colluders_zeroed = true;
};

Outcome run(const net::SimConfig& config, const net::NodeRoles& roles,
            bool one_sided = false) {
  core::DetectorConfig dc;
  dc.positive_fraction_min = 0.9;
  dc.complement_fraction_max = 0.7;
  dc.frequency_min = 20;
  dc.high_rep_threshold = 0.05;
  dc.require_mutual = !one_sided;

  reputation::WeightedFeedbackEngine engine;
  core::OptimizedCollusionDetector detector(dc);
  net::Simulator sim(config, roles, engine, &detector);
  sim.run();

  Outcome out;
  out.pct_requests = sim.metrics().percent_to_colluders();
  out.flagged = sim.manager().detected().size();
  out.swaps = sim.whitewash_count();
  for (rating::NodeId id : sim.roles().colluders) {
    if (engine.reputation(id) != 0.0) out.colluders_zeroed = false;
  }
  return out;
}

net::SimConfig base_config() {
  net::SimConfig config;
  config.num_nodes = 150;
  config.sim_cycles = 12;
  config.seed = 13524;
  return config;
}

}  // namespace

int main() {
  util::Table table({"attack", "% requests to attackers",
                     "identities flagged", "live colluders zeroed"});
  auto row = [&](const char* name, const Outcome& o) {
    table.add_row({name, util::Table::num(o.pct_requests, 2),
                   util::Table::num(static_cast<std::uint64_t>(o.flagged)),
                   o.colluders_zeroed ? "yes" : "NO"});
  };

  row("pair collusion (paper Sec. V)",
      run(base_config(), net::paper_roles(8, 3)));
  row("compromised pretrusted (Fig. 7/11)",
      run(base_config(), net::compromised_roles()));
  row("sybil ring (mutual)",
      run(base_config(), net::sybil_roles(2, 4, /*mutual=*/true)));
  row("sybil boost (one-way), mutual-evidence detector",
      run(base_config(), net::sybil_roles(2, 4, /*mutual=*/false)));
  row("sybil boost (one-way), one-sided detector",
      run(base_config(), net::sybil_roles(2, 4, /*mutual=*/false),
          /*one_sided=*/true));
  {
    net::SimConfig camo = base_config();
    camo.collusion_positive_prob = 0.85;  // ducks T_a = 0.9
    row("pair collusion + score camouflage (a~0.85)",
        run(camo, net::paper_roles(8, 3)));
  }
  {
    net::SimConfig traitor = base_config();
    traitor.traitor_defect_cycle = 6;
    traitor.traitor_good_prob_after = 0.05;
    row("traitors (defect mid-run; no collusion)",
        run(traitor, net::traitor_roles(6, 3)));
  }
  {
    net::SimConfig ww = base_config();
    ww.whitewash_on_detection = true;
    const Outcome o = run(ww, net::paper_roles(8, 3));
    table.add_row({"pair collusion + whitewashing",
                   util::Table::num(o.pct_requests, 2),
                   util::Table::num(static_cast<std::uint64_t>(o.flagged)) +
                       " (+" + std::to_string(o.swaps) + " swaps)",
                   o.colluders_zeroed ? "yes" : "NO"});
  }

  std::printf("Attack lab: EigenTrust + Optimized detection, 150 nodes, "
              "12 cycles\n\n%s\n"
              "notes: the one-way sybil row shows the mutual-evidence "
              "predicate's documented blind spot; score camouflage inside "
              "(T_a, 1) evades at reduced payoff; traitors are a "
              "reputation-dynamics problem, not a collusion one.\n",
              table.render().c_str());
  return 0;
}
