// Marketplace audit scenario (the paper's Sec. III study): given a year of
// five-star transaction ratings from an online marketplace, find the
// sellers whose reputations look bought.
//
// The pipeline: generate a synthetic Amazon-style trace (a substitute for
// the paper's crawl — see DESIGN.md), run the suspicious-pair filter and
// per-rater frequency analysis, then feed the ratings (mapped to -1/0/+1)
// through the collusion detector used for P2P networks and compare what
// each approach flags against the generator's ground truth.
//
//   ./build/examples/marketplace_audit
#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "core/predicates.h"
#include "rating/store.h"
#include "trace/amazon.h"
#include "trace/analysis.h"
#include "util/table.h"

int main() {
  using namespace p2prep;

  trace::AmazonTraceConfig config;
  config.num_sellers = 60;
  config.num_buyers = 8000;
  config.num_suspicious_sellers = 10;
  const trace::AmazonTrace tr = trace::generate_amazon_trace(config);
  std::printf("audit input: %zu ratings across %zu sellers over %zu days\n\n",
              tr.ratings.size(), tr.num_sellers, tr.days);

  // --- Approach 1: the paper's Sec. III statistical filter ---
  const auto summary = trace::find_suspicious(tr.ratings, 20);
  std::unordered_set<trace::UserId> filter_flagged(summary.sellers.begin(),
                                                   summary.sellers.end());

  // --- Approach 2: the collusion detector over +/-1 mapped ratings ---
  // Detection needs bidirectional frequency in the general P2P model; in a
  // marketplace only buyers rate, so we use the one-directional variant:
  // flag (rater, seller) pairs where the rater is frequent and almost
  // exclusively positive while the seller's remaining raters are ordinary.
  const std::size_t id_space = config.num_sellers + config.num_buyers + 4096;
  rating::RatingStore store(id_space);
  for (const trace::MarketplaceRating& r : tr.ratings) {
    store.ingest({.rater = r.rater, .ratee = r.ratee,
                  .score = rating::score_from_stars(r.stars),
                  .time = r.day});
  }
  std::unordered_set<trace::UserId> detector_flagged;
  core::DetectorConfig dc;  // trace-calibrated defaults (T_a=0.8, T_b=0.2)
  for (trace::UserId seller = 0; seller < config.num_sellers; ++seller) {
    store.for_each_window_rater(
        seller, [&](rating::NodeId rater, const rating::PairStats& pair) {
          if (!core::frequency_ok(pair, dc)) return;
          if (!core::positive_fraction_ok(pair, dc)) return;
          // Complement: the seller's other raters must look ordinary —
          // for a marketplace that means clearly *less* positive than the
          // campaign, not mostly negative (honest stores have b ~ 0.9).
          const auto complement = store.window_complement(seller, rater);
          if (complement.total == 0 ||
              complement.positive_fraction() <
                  pair.positive_fraction() - 0.02) {
            detector_flagged.insert(seller);
          }
        });
  }

  // --- Compare against ground truth ---
  std::unordered_set<trace::UserId> truth(tr.truth.suspicious_sellers.begin(),
                                          tr.truth.suspicious_sellers.end());
  auto score = [&](const std::unordered_set<trace::UserId>& flagged) {
    std::size_t hits = 0;
    for (trace::UserId s : flagged)
      if (truth.contains(s)) ++hits;
    return std::pair{hits, flagged.size() - hits};
  };
  const auto [filter_hits, filter_fp] = score(filter_flagged);
  const auto [det_hits, det_fp] = score(detector_flagged);

  util::Table table({"approach", "flagged", "true positives",
                     "false positives", "recall"});
  auto recall = [&](std::size_t hits) {
    return truth.empty() ? 1.0
                         : static_cast<double>(hits) /
                               static_cast<double>(truth.size());
  };
  table.add_row({"frequent-pair filter (Sec. III)",
                 util::Table::num(static_cast<std::uint64_t>(
                     filter_flagged.size())),
                 util::Table::num(static_cast<std::uint64_t>(filter_hits)),
                 util::Table::num(static_cast<std::uint64_t>(filter_fp)),
                 util::Table::num(recall(filter_hits), 2)});
  table.add_row({"collusion detector (Sec. IV)",
                 util::Table::num(static_cast<std::uint64_t>(
                     detector_flagged.size())),
                 util::Table::num(static_cast<std::uint64_t>(det_hits)),
                 util::Table::num(static_cast<std::uint64_t>(det_fp)),
                 util::Table::num(recall(det_hits), 2)});
  std::printf("%s\n", table.render().c_str());

  std::printf("ground-truth suspicious sellers:");
  for (trace::UserId s : tr.truth.suspicious_sellers) std::printf(" %u", s);
  std::printf("\n");
  return 0;
}
