// P2P file-sharing scenario (the paper's Sec. V workload, the motivation
// in its introduction): 200 peers in interest clusters share files; eight
// of them collude in pairs to inflate each other's reputations while
// serving junk. We run the same network twice — EigenTrust alone, then
// EigenTrust with the Optimized collusion detector attached — and compare
// who the traffic goes to.
//
//   ./build/examples/filesharing_simulation [colluders] [sim_cycles]
#include <cstdio>
#include <cstdlib>

#include "core/optimized_detector.h"
#include "net/simulator.h"
#include "reputation/weighted.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace p2prep;

  std::size_t colluders = 8;
  net::SimConfig config;  // paper defaults: 200 nodes, 20 interests, ...
  if (argc > 1) colluders = static_cast<std::size_t>(std::atoi(argv[1]));
  if (argc > 2) config.sim_cycles = static_cast<std::size_t>(std::atoi(argv[2]));
  if (colluders % 2 != 0 || colluders == 0 ||
      colluders + 3 > config.num_nodes) {
    std::fprintf(stderr, "colluders must be a positive even count < %zu\n",
                 config.num_nodes - 3);
    return 2;
  }

  const net::NodeRoles roles = net::paper_roles(colluders, 3);

  core::DetectorConfig detector_config;
  detector_config.positive_fraction_min = 0.9;
  detector_config.complement_fraction_max = 0.7;
  detector_config.frequency_min = 20;
  detector_config.high_rep_threshold = 0.05;

  // Run 1: EigenTrust alone.
  reputation::WeightedFeedbackEngine baseline_engine;
  net::Simulator baseline(config, roles, baseline_engine);
  baseline.run();

  // Run 2: EigenTrust + Optimized collusion detection.
  reputation::WeightedFeedbackEngine protected_engine;
  core::OptimizedCollusionDetector detector(detector_config);
  net::Simulator defended(config, roles, protected_engine, &detector);
  defended.run();

  util::Table table({"metric", "EigenTrust", "EigenTrust+Optimized"});
  table.add_row({"requests to colluders (%)",
                 util::Table::num(baseline.metrics().percent_to_colluders(), 2),
                 util::Table::num(defended.metrics().percent_to_colluders(), 2)});
  table.add_row({"inauthentic files",
                 util::Table::num(baseline.metrics().inauthentic_files),
                 util::Table::num(defended.metrics().inauthentic_files)});
  table.add_row({"total requests",
                 util::Table::num(baseline.metrics().total_requests),
                 util::Table::num(defended.metrics().total_requests)});
  table.add_row({"colluders detected", "0",
                 util::Table::num(static_cast<std::uint64_t>(
                     defended.manager().detected().size()))});
  table.add_row({"detection cost (work units)", "0",
                 util::Table::num(defended.detection_cost().total())});

  std::printf("P2P file sharing, %zu nodes, %zu colluders, %zu cycles\n\n%s\n",
              config.num_nodes, colluders, config.sim_cycles,
              table.render().c_str());

  std::printf("final reputations of the colluders under detection:\n");
  for (rating::NodeId id : roles.colluders)
    std::printf("  node %u: %.5f\n", id + 1, protected_engine.reputation(id));
  return 0;
}
