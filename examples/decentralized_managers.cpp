// Decentralized deployment scenario (the paper's Fig. 2 / Sec. IV-B):
// reputation management distributed over a Chord DHT of manager nodes.
// Ratings are published with Insert(ID, r) routed through the ring,
// reputation queries use Lookup(ID), and the collusion-detection protocol
// resolves cross-manager pair checks with routed messages.
//
//   ./build/examples/decentralized_managers [nodes] [managers]
#include <cstdio>
#include <cstdlib>

#include "managers/decentralized.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace p2prep;

  std::size_t nodes = 120;
  std::size_t manager_count = 16;
  if (argc > 1) nodes = static_cast<std::size_t>(std::atoi(argv[1]));
  if (argc > 2) manager_count = static_cast<std::size_t>(std::atoi(argv[2]));
  if (nodes < 10 || manager_count == 0 || manager_count > nodes) {
    std::fprintf(stderr, "usage: %s [nodes>=10] [1<=managers<=nodes]\n",
                 argv[0]);
    return 2;
  }

  managers::DecentralizedReputationSystem::Config config;
  config.num_nodes = nodes;
  config.detector.positive_fraction_min = 0.8;
  // Organic raters are few per node here, so allow a little sampling
  // noise in the complement (colluders' organic positives run ~5%).
  config.detector.complement_fraction_max = 0.3;
  config.detector.frequency_min = 20;
  config.detector.high_rep_threshold = 0.0;  // raw summation units

  // The paper's "power nodes": the first `manager_count` node ids form the
  // DHT that shards reputation management.
  std::vector<rating::NodeId> manager_ids;
  for (rating::NodeId id = 0; id < manager_count; ++id)
    manager_ids.push_back(id);
  managers::DecentralizedReputationSystem system(config, manager_ids);

  std::printf("Chord ring: %zu managers over a %zu-bit key space\n",
              system.num_managers(), system.ring().config().bits);

  // Workload: organic ratings plus two colluding pairs (100, 101) and
  // (102, 103).
  util::Rng rng(2012);
  for (int k = 0; k < 40; ++k) {
    system.ingest({100, 101, rating::Score::kPositive, 0});
    system.ingest({101, 100, rating::Score::kPositive, 0});
    system.ingest({102, 103, rating::Score::kPositive, 0});
    system.ingest({103, 102, rating::Score::kPositive, 0});
  }
  for (rating::NodeId rater = 0; rater < nodes; ++rater) {
    for (int k = 0; k < 8; ++k) {
      auto ratee = static_cast<rating::NodeId>(rng.next_below(nodes));
      if (ratee == rater) ratee = static_cast<rating::NodeId>((ratee + 1) % nodes);
      const bool target_colludes = ratee >= 100 && ratee <= 103;
      system.ingest({rater, ratee,
                     rng.chance(target_colludes ? 0.05 : 0.85)
                         ? rating::Score::kPositive
                         : rating::Score::kNegative,
                     0});
    }
  }
  std::printf("published ratings with %llu DHT routing messages\n",
              static_cast<unsigned long long>(system.transport_messages()));

  // A client queries a reputation through the ring.
  const auto answer = system.query_reputation(/*requester=*/5, /*target=*/100);
  std::printf("Lookup(100) from node 5: R=%lld via manager %u in %zu hops\n",
              static_cast<long long>(answer.reputation), answer.manager,
              answer.hops);

  // Run the decentralized detection protocol.
  const auto outcome =
      system.run_detection(managers::DetectionMethod::kOptimized);
  util::Table table({"metric", "value"});
  table.add_row({"pairs flagged",
                 util::Table::num(static_cast<std::uint64_t>(
                     outcome.report.pairs.size()))});
  table.add_row({"cross-manager check requests",
                 util::Table::num(outcome.check_requests)});
  table.add_row({"routing hops for checks",
                 util::Table::num(outcome.request_hops)});
  table.add_row({"checks resolved shard-locally",
                 util::Table::num(outcome.local_checks)});
  std::printf("\ndetection outcome:\n%s\n", table.render().c_str());
  for (const core::PairEvidence& e : outcome.report.pairs)
    std::printf("  flagged %s\n", e.to_string().c_str());

  // Detected nodes now answer 0.
  const auto after = system.query_reputation(5, 100);
  std::printf("\nLookup(100) after detection: R=%lld\n",
              static_cast<long long>(after.reputation));
  return outcome.report.pairs.empty() ? 1 : 0;
}
