// Quickstart: the smallest end-to-end use of the library.
//
// Build a centralized reputation manager over 10 nodes, feed it honest
// traffic plus one colluding pair, run the Optimized collusion detector,
// and print the evidence. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/optimized_detector.h"
#include "managers/centralized.h"
#include "reputation/summation.h"

int main() {
  using namespace p2prep;

  constexpr std::size_t kNodes = 10;

  // 1. A reputation engine (eBay-style summation) and a manager that owns
  //    the rating ledger and runs detection over it.
  reputation::SummationEngine engine;
  core::DetectorConfig config;      // T_a=0.8, T_b=0.2, T_N=20, T_R=0.05
  managers::CentralizedManager manager(kNodes, engine, config);

  // 2. Honest traffic: clients 2..9 rate servers 8 and 9 mostly
  //    positively, and rate the colluders 0 and 1 negatively (they serve
  //    junk).
  for (rating::NodeId client = 2; client < kNodes; ++client) {
    for (int k = 0; k < 5; ++k) {
      manager.ingest({.rater = client, .ratee = 8,
                      .score = rating::Score::kPositive, .time = 0});
      manager.ingest({.rater = client, .ratee = 0,
                      .score = rating::Score::kNegative, .time = 0});
      manager.ingest({.rater = client, .ratee = 1,
                      .score = rating::Score::kNegative, .time = 0});
    }
  }

  // 3. Collusion: nodes 0 and 1 bombard each other with positives — often
  //    enough to cross T_N and outweigh the crowd's negatives.
  for (int k = 0; k < 60; ++k) {
    manager.ingest({.rater = 0, .ratee = 1,
                    .score = rating::Score::kPositive, .time = 0});
    manager.ingest({.rater = 1, .ratee = 0,
                    .score = rating::Score::kPositive, .time = 0});
  }

  // 4. Publish reputations, then detect.
  manager.update_reputations();
  std::printf("reputations before detection:\n");
  for (rating::NodeId id = 0; id < kNodes; ++id)
    std::printf("  node %u: %.3f%s\n", id, engine.reputation(id),
                id <= 1 ? "   <- colluder (boosted!)" : "");

  core::OptimizedCollusionDetector detector(config);
  const core::DetectionReport report = manager.run_detection(detector);

  std::printf("\ndetected %zu colluding pair(s) at cost %llu work units:\n",
              report.pairs.size(),
              static_cast<unsigned long long>(report.cost.total()));
  for (const core::PairEvidence& e : report.pairs)
    std::printf("  %s\n", e.to_string().c_str());

  std::printf("\nreputations after detection (colluders zeroed):\n");
  for (rating::NodeId id = 0; id < kNodes; ++id)
    std::printf("  node %u: %.3f\n", id, engine.reputation(id));
  return report.pairs.empty() ? 1 : 0;
}
